"""Virtqueues and the virtio-pim device plumbing (Appendix A.1).

The specification the paper proposes to the OASIS VIRTIO committee:

- device ID **42**;
- two queues: **transferq** (512 slots) carrying commands and data, and
  **controlq** carrying manager synchronization notifications;
- no feature bits;
- a device configuration layout exposing clock division, memory region
  size, number of control interfaces, DPU frequency and power management
  information — the same attributes the native driver publishes.

Buffers are (GPA, length) descriptors into guest memory; a request is a
descriptor chain.  The serialized transfer matrix occupies at most 130
buffers (request info + matrix metadata + 64 x (DPU metadata + page
buffer)), fitting the 512-pointer queue regardless of data size (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, List, Optional
from collections import deque

import numpy as np

from repro.config import (
    MAX_SERIALIZED_BUFFERS,
    TRANSFERQ_SLOTS,
    VIRTIO_PIM_DEVICE_ID,
)
from repro.errors import VirtqueueError
from repro.driver.driver import DeviceConfig
from repro.virt.guest_memory import GuestMemory


@dataclass(frozen=True)
class Descriptor:
    """One buffer reference in a descriptor chain (Appendix A.1: up to 131
    chained buffers per request)."""

    gpa: int
    length: int
    device_writable: bool = False


@dataclass
class UsedElement:
    """Completion record the device posts to the used ring (Appendix A.1;
    its arrival triggers the completion IRQ of §3.4)."""

    request_id: int
    written: int = 0
    status: int = 0  #: 0 = OK


class Virtqueue:
    """A split-ring virtqueue, simplified to what the device model needs
    (Appendix A.1: the 512-slot transferq and the controlq)."""

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self.capacity = capacity
        self._avail: Deque[tuple] = deque()
        self._used: Deque[UsedElement] = deque()
        self._next_id = 0
        self.kicks = 0
        self.max_outstanding = 0

    def add_chain(self, chain: List[Descriptor],
                  flow: Optional[str] = None) -> int:
        """Post a descriptor chain; returns its request id.

        ``flow`` optionally tags the chain with the posting VM's QoS flow
        id (``docs/qos.md``), so the shared event loop and debug tooling
        can attribute queued work per tenant; ``None`` for untagged VMs.
        """
        if not chain:
            raise VirtqueueError(f"{self.name}: empty descriptor chain")
        if len(chain) > MAX_SERIALIZED_BUFFERS:
            raise VirtqueueError(
                f"{self.name}: chain of {len(chain)} buffers exceeds the "
                f"{MAX_SERIALIZED_BUFFERS}-buffer serialization bound"
            )
        outstanding = sum(len(c[1]) for c in self._avail) + len(chain)
        if outstanding > self.capacity:
            raise VirtqueueError(
                f"{self.name}: {outstanding} descriptors exceed the "
                f"{self.capacity}-slot queue"
            )
        request_id = self._next_id
        self._next_id += 1
        self._avail.append((request_id, list(chain), flow))
        self.max_outstanding = max(self.max_outstanding, outstanding)
        return request_id

    def pending_for(self, flow: str) -> int:
        """Queued chains tagged with QoS flow ``flow``."""
        return sum(1 for item in self._avail if item[2] == flow)

    def kick(self) -> None:
        """Guest notifies the device (MMIO write -> VMEXIT)."""
        self.kicks += 1

    def pop_avail(self) -> Optional[tuple]:
        """Device side: take the next (request_id, chain) to process."""
        if not self._avail:
            return None
        return self._avail.popleft()

    def push_used(self, element: UsedElement) -> None:
        self._used.append(element)

    def pop_used(self) -> Optional[UsedElement]:
        if not self._used:
            return None
        return self._used.popleft()

    @property
    def pending(self) -> int:
        return len(self._avail)


@dataclass
class VirtioPimConfigSpace:
    """The device configuration layout presented over MMIO (Appendix A.1:
    frequency, clock division, MRAM size, DPU/CI population)."""

    device_id: int = VIRTIO_PIM_DEVICE_ID
    config: DeviceConfig = field(default_factory=DeviceConfig)

    def as_fields(self) -> dict:
        """The attributes the frontend driver reads during initialization."""
        return {
            "device_id": self.device_id,
            "frequency_hz": self.config.frequency_hz,
            "clock_division": self.config.clock_division,
            "mram_bytes": self.config.mram_bytes,
            "nr_dpus": self.config.nr_dpus,
            "nr_control_interfaces": self.config.nr_control_interfaces,
            "power_management": self.config.power_management,
        }


class VirtioPimQueues:
    """The two queues of one vUPMEM device (Appendix A.1: transferq for
    rank operations, controlq for manager notifications)."""

    def __init__(self) -> None:
        self.transferq = Virtqueue("transferq", TRANSFERQ_SLOTS)
        self.controlq = Virtqueue("controlq", 64)


def write_buffer(memory: GuestMemory, data: np.ndarray,
                 device_writable: bool = False) -> Descriptor:
    """Place ``data`` into fresh guest pages and return its descriptor."""
    u8 = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    nr_pages = max(1, (u8.size + 4095) // 4096)
    gpa = memory.alloc_pages(nr_pages)
    memory.write(gpa, u8)
    return Descriptor(gpa=gpa, length=u8.size, device_writable=device_writable)
