"""The virtual machine object: guest memory, KVM context, vUPMEM devices."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.errors import DeviceNotLinkedError
from repro.hardware.machine import Machine
from repro.sdk.profile import Profiler
from repro.virt.backend import VUpmemBackend
from repro.virt.frontend import VUpmemFrontend
from repro.virt.guest_memory import GuestMemory
from repro.virt.kvm import Kvm
from repro.virt.virtio import VirtioPimQueues

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.qos.flow import QosFlow
    from repro.virt.firecracker import VmConfig
    from repro.virt.manager import Manager


@dataclass
class VUpmemDevice:
    """One vUPMEM device: frontend + backend + queues + MMIO window (§3.2:
    one such bundle per requested device, Fig. 3)."""

    device_id: str
    frontend: VUpmemFrontend
    backend: VUpmemBackend
    queues: VirtioPimQueues
    mmio: object = None
    initialized: bool = False

    @property
    def linked(self) -> bool:
        return self.backend.linked


@dataclass
class Vm:
    """A booted microVM (§3.2: one Firecracker process per VM)."""

    vm_id: str
    config: "VmConfig"
    machine: Machine
    memory: GuestMemory
    kvm: Kvm
    profiler: Profiler
    manager: "Manager"
    devices: List[VUpmemDevice] = field(default_factory=list)
    boot_time: float = 0.0
    #: The VM's QoS flow (``Optimization(qos=...)``); ``None`` = no flow
    #: registered, no arbitration, the exact default timing path.
    qos_flow: Optional["QosFlow"] = None
    #: Kernel command-line fragments describing the virtio devices
    #: (Section 3.2: how the guest learns MMIO regions and IRQs).
    kernel_cmdline: List[str] = field(default_factory=list)

    def free_devices(self) -> List[VUpmemDevice]:
        """Devices not currently linked to a physical rank."""
        return [device for device in self.devices if not device.linked]

    def acquire_rank(self, device: VUpmemDevice) -> int:
        """Ask the manager for a rank and link the device's backend to it.

        Dynamic rank allocation (Section 3.3): the same device may be
        linked to different physical ranks over the VM's lifetime.
        """
        if device.linked:
            raise DeviceNotLinkedError(
                f"device {device.device_id} is already linked"
            )
        rank_index = self.manager.allocate(device.device_id)
        pager = getattr(self.manager, "pager", None)
        if (pager is not None and pager.is_virtual(rank_index)
                and self.qos_flow is not None):
            # Victim selection is QoS-weight-aware (docs/paging.md): a
            # heavier flow's ranks stay resident longer under pressure.
            pager.set_weight(rank_index, self.qos_flow.weight)
        device.backend.link_rank(rank_index)
        if not device.initialized:
            try:
                self.machine.clock.advance(device.frontend.initialize())
            except Exception:
                # The config roundtrip failed (e.g. injected transport
                # fault): give the rank back, or it stays ALLO forever
                # with nobody holding a channel to release it.
                device.backend.unlink()
                raise
            device.initialized = True
        return rank_index

    def shutdown(self) -> None:
        """Release every linked device (VM teardown)."""
        for device in self.devices:
            if device.linked:
                device.backend.unlink()
        if self.qos_flow is not None:
            # Departed tenants stop contending: the flow leaves the
            # arbiter so survivors no longer pay for its demand.
            self.qos_flow.close()
