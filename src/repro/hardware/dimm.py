"""A PIM DIMM: the DDR4 module holding two ranks (Section 2)."""

from __future__ import annotations

from typing import List

from repro.config import RANKS_PER_DIMM
from repro.hardware.rank import Rank


class Dimm:
    """One UPMEM DIMM, a standard DDR4-2400 module carrying 2 ranks
    (§2, Fig. 1: the testbed fits 10 such PIM DIMMs)."""

    def __init__(self, index: int, ranks: List[Rank]) -> None:
        if len(ranks) > RANKS_PER_DIMM:
            raise ValueError(
                f"a DIMM holds at most {RANKS_PER_DIMM} ranks, got {len(ranks)}"
            )
        self.index = index
        self.ranks = ranks

    @property
    def nr_dpus(self) -> int:
        return sum(rank.nr_dpus for rank in self.ranks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dimm({self.index}, {len(self.ranks)} ranks)"
