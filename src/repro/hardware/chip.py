"""A PIM chip: the 8-DPU physical grouping inside a rank.

Chips matter for two behaviours the paper relies on:

- the backend operates on 8 DPUs at a time with 8 worker threads, "aligned
  with the system's setup, which involves 64 DPUs organized into chips of
  8 DPUs" (Section 4.2);
- byte interleaving spreads each 64-bit word one byte per chip.
"""

from __future__ import annotations

from typing import List

from repro.config import DPUS_PER_CHIP
from repro.hardware.dpu import Dpu


class PimChip:
    """One memory chip holding :data:`~repro.config.DPUS_PER_CHIP` DPUs
    (§2, Fig. 1: 8 chips per rank; byte interleaving spreads words over them)."""

    def __init__(self, rank_index: int, chip_index: int,
                 dpus: List[Dpu]) -> None:
        if len(dpus) > DPUS_PER_CHIP:
            raise ValueError(
                f"a chip holds at most {DPUS_PER_CHIP} DPUs, got {len(dpus)}"
            )
        self.rank_index = rank_index
        self.chip_index = chip_index
        self.dpus = dpus

    def __len__(self) -> int:
        return len(self.dpus)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PimChip(r{self.rank_index}.c{self.chip_index}, {len(self)} DPUs)"
