"""The calibrated cost model.

Every simulated duration in the stack is derived from the constants below.
Calibration anchors come straight from the paper:

- DPU frequency 350 MHz; two consecutive instructions of one tasklet must
  be >= 11 cycles apart, so pipeline time is
  ``max(total_instructions, 11 * max_per_tasklet_instructions)`` cycles
  (Section 2, also the standard PrIM model).
- A guest->VMM transition (virtio kick: trap into KVM, forward to
  Firecracker, handle, inject IRQ, resume guest) carries a fixed cost that
  dominates small transfers — the paper's headline observation that *call
  count*, not bytes, drives overhead (Sections 1 and 5.3.1).
- The Rust data path is ~3.43x slower than the C/AVX-512 one (the "343%
  improvement" of Section 4.2 / Fig. 11).
- Manager: rank allocation from NAAV costs ~36 ms; a rank reset costs
  ~597 ms (Section 4.2 "Manager's Overhead").
- Fig. 9c fixes the ratio between per-byte and per-call virtualization
  costs: checksum overhead falls from 2.33x at 8 MB/DPU to 1.29x at
  60 MB/DPU.

Absolute values will not match the authors' Xeon 4215 testbed — the
assertions in ``tests/analysis/test_paper_shapes.py`` check *shapes*
(who wins, rough factors, crossovers), as the reproduction contract says.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import DPU_FREQUENCY_HZ, PAGE_SIZE, PIPELINE_DEPTH


@dataclass(frozen=True)
class CostModel:
    """All timing constants, in seconds (or cycles where noted), calibrated
    against the §5.1 testbed measurements."""

    # -- DPU core ----------------------------------------------------------
    dpu_frequency_hz: float = DPU_FREQUENCY_HZ
    pipeline_depth: int = PIPELINE_DEPTH
    #: MRAM<->WRAM DMA: fixed setup cycles + cycles per byte.  ~77-cycle
    #: setup and ~0.5 cycles/byte match published UPMEM microbenchmarks.
    dma_setup_cycles: float = 77.0
    dma_cycles_per_byte: float = 0.5

    # -- Host <-> rank transfers (native, performance mode) ----------------
    #: Fixed cost of one rank-level transfer operation (driver call, CI
    #: programming, DMA kick).
    rank_op_fixed: float = 1.5e-6
    #: Sustained host<->rank copy bandwidth, bytes/second.  UPMEM rank
    #: transfer peaks around a few GB/s; 2.8 GB/s reproduces the scale of
    #: Fig. 9's checksum times.
    rank_xfer_bandwidth: float = 2.8e9
    #: Host-side interleaving shuffle throughput for the C/AVX-512 flavour
    #: (bytes/second).  The native SDK always uses this flavour.
    interleave_bw_c: float = 9.0e9
    #: Rust/AVX2 data-path slowdown vs C/AVX-512.  Section 4.2 quotes a
    #: per-function improvement of "up to 343%", but Fig. 13's end-to-end
    #: breakdown (T-data = 98.3% of a ~1.5 s write in Rust vs ~30 ms in C
    #: for the same 480 MB) implies a far larger data-path gap; we
    #: calibrate to the Fig. 11/13 behaviour, which the ablation tests
    #: assert (rust >= 3.43x slower on the write path).
    rust_slowdown: float = 30.0
    #: Fixed cost of a serial per-DPU copy (dpu_copy_to/from one DPU).
    dpu_copy_fixed: float = 1.2e-6

    # -- Control interface --------------------------------------------------
    #: One native CI operation (status poll, command byte) through mmap.
    ci_op_native: float = 2e-6
    #: Guest-side polling period during dpu_launch(SYNCHRONOUS): the SDK
    #: re-reads DPU run status at this cadence.  Chosen so a 2.8 s checksum
    #: run observes ~28000 CI ops, matching Section 5.3.1's "8000 to 28000".
    launch_poll_period: float = 100e-6
    #: Mandatory CI operations per launch (boot fault clear, thread resume,
    #: per-chip status reads) regardless of run length.
    ci_ops_per_launch: int = 640

    # -- Virtualization: guest <-> VMM transitions ---------------------------
    #: Guest write to the virtio kick register -> KVM trap -> Firecracker
    #: event handler dispatch.
    vmexit_cost: float = 8e-6
    #: IRQ injection + guest driver wakeup on completion.
    irq_inject_cost: float = 12e-6
    #: Firecracker event-loop handling of one queue notification (epoll
    #: wakeup, descriptor fetch) before any payload work.  Together with
    #: the trap/IRQ and backend fixed costs, one data request carries
    #: ~90 us of fixed overhead vs ~3 us for a native small operation —
    #: the ~26x-per-IO-op regime the paper cites for Firecracker.
    event_dispatch_cost: float = 25e-6
    #: Extra per-roundtrip latency a *synchronous* CI operation pays inside
    #: a VM on top of the native CI cost.  Drives the launch-poll overhead
    #: and the small-request pathologies.
    ci_virt_roundtrip: float = 50e-6

    # -- Virtualization: per-page costs --------------------------------------
    #: Frontend page management: pinning user pages and collecting their
    #: GPAs (Section 5.4.1's "Page" step).
    page_mgmt_per_page: float = 100e-9
    #: Frontend serialization of the transfer matrix, per page pointer.
    serialize_per_page: float = 60e-9
    #: Backend deserialization, per page pointer.
    deserialize_per_page: float = 50e-9
    #: GPA->HVA translation, per page, before dividing by the translation
    #: thread count (Section 4.2 uses several threads to accelerate it).
    translate_per_page: float = 160e-9
    #: Fixed start-up cost of the threaded translation (thread handoff).
    translate_fixed: float = 5e-6
    #: Plain in-guest memcpy bandwidth (prefetch-cache hits, batch-buffer
    #: accumulation) — ordinary DRAM copies, no interleaving.
    guest_copy_bandwidth: float = 8.0e9

    #: Content-aware transfer cache (``Optimization(cache=True)`` only —
    #: the cache-off model never charges these).  Digesting one 4 KiB page
    #: with an xxhash-class hash runs at roughly memcpy speed on one core.
    digest_per_page: float = 120e-9
    #: Frontend per-entry digest-index probe (dict lookup + bookkeeping).
    cache_lookup_cost: float = 50e-9
    #: Backend per-SKIP-extent resident-index validation.
    cache_skip_lookup_cost: float = 60e-9

    #: Contention between concurrently-handled rank requests in the VMM.
    #: Fig. 16 shows parallel per-rank write requests each taking ~6 s
    #: where a solo request takes ~1.1 s: the backend threads share the
    #: host memory bus, so parallel handling wins ~1.4x on writes and
    #: ~1.13x end-to-end (Fig. 15), not a full rank-count factor.
    #: 0 = perfectly parallel, 1 = fully serialized.
    parallel_contention: float = 0.55
    #: Contention between concurrent *native* rank transfers (the SDK's
    #: per-rank threads share the memory bus too, but without the VMM's
    #: thread handoffs): aggregate bandwidth over 8 ranks scales ~3x.
    native_parallel_contention: float = 0.25

    # -- Backend execution ----------------------------------------------------
    #: Worker-thread handoff for one DPU-operation batch.
    backend_dispatch: float = 10e-6
    #: Per-request bookkeeping in the backend module.
    backend_request_fixed: float = 35e-6

    # -- Manager ---------------------------------------------------------------
    #: dpu_alloc-triggered allocation of a NAAV rank (Section 4.2: 36 ms).
    manager_alloc: float = 36e-3
    #: Full rank reset: memset of 64 x 64 MB MRAM (Section 4.2: 597 ms).
    manager_reset: float = 597e-3
    #: Observer-thread sysfs polling period.
    manager_observe_period: float = 50e-3
    #: Manager retry backoff *base* when no rank is available: attempt N
    #: waits ``manager_retry_timeout * backoff_factor**N`` (plus jitter),
    #: capped at ``manager_retry_max``.
    manager_retry_timeout: float = 100e-3
    #: Upper bound on one manager retry backoff interval.
    manager_retry_max: float = 1.6

    # -- Fault detection / recovery -------------------------------------------
    #: Frontend retry backoff base after a transient transport fault:
    #: attempt N adds ``transport_retry_backoff * 2**(N-1)`` of wait.
    transport_retry_backoff: float = 200e-6
    #: Modeled integrity-check latency paid to detect a corrupted
    #: virtio-pim message before it is re-sent.
    transport_corruption_detect: float = 50e-6
    #: Watchdog timeout that detects a hung backend worker.
    backend_watchdog_timeout: float = 5e-3

    # -- VM lifecycle -------------------------------------------------------------
    #: Extra boot time contributed by one vUPMEM device (Section 3.2: <=2 ms).
    vupmem_boot_cost: float = 2e-3
    #: Device configuration request during driver init.
    config_request_cost: float = 30e-6

    # -- derived helpers ------------------------------------------------------

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.dpu_frequency_hz

    def pipeline_time(self, per_tasklet_instructions) -> float:
        """Wall time of a DPU run given each tasklet's issued instructions.

        Implements the 11-cycle hazard rule: with T >= 11 busy tasklets the
        pipeline retires one instruction per cycle; below that each tasklet
        can issue at most once per 11 cycles.
        """
        counts = list(per_tasklet_instructions)
        if not counts:
            return 0.0
        total = float(sum(counts))
        bound = self.pipeline_depth * float(max(counts))
        return self.cycles_to_seconds(max(total, bound))

    def dma_time(self, nr_ops: int, total_bytes: int) -> float:
        """MRAM<->WRAM DMA time for ``nr_ops`` transfers of ``total_bytes``."""
        cycles = nr_ops * self.dma_setup_cycles + total_bytes * self.dma_cycles_per_byte
        return self.cycles_to_seconds(cycles)

    def rank_transfer_time(self, total_bytes: int) -> float:
        """Bulk host<->rank copy time (excluding interleave CPU work)."""
        return self.rank_op_fixed + total_bytes / self.rank_xfer_bandwidth

    def interleave_time(self, total_bytes: int, rust: bool = False) -> float:
        """CPU time spent byte-interleaving ``total_bytes``."""
        bw = self.interleave_bw_c / (self.rust_slowdown if rust else 1.0)
        return total_bytes / bw

    def transition_roundtrip(self) -> float:
        """One full guest->VMM->guest transition (kick, dispatch, IRQ)."""
        return self.vmexit_cost + self.event_dispatch_cost + self.irq_inject_cost

    def pages_of(self, nr_bytes: int) -> int:
        return (nr_bytes + PAGE_SIZE - 1) // PAGE_SIZE

    def with_overrides(self, **kwargs) -> "CostModel":
        """Return a copy with selected constants replaced (for ablations)."""
        return replace(self, **kwargs)


#: The default, calibrated model used throughout the library.
DEFAULT_COST_MODEL = CostModel()
