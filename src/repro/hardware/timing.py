"""The calibrated cost model.

Every simulated duration in the stack is derived from the constants below.
Calibration anchors come straight from the paper:

- DPU frequency 350 MHz; two consecutive instructions of one tasklet must
  be >= 11 cycles apart, so pipeline time is
  ``max(total_instructions, 11 * max_per_tasklet_instructions)`` cycles
  (Section 2, also the standard PrIM model).
- A guest->VMM transition (virtio kick: trap into KVM, forward to
  Firecracker, handle, inject IRQ, resume guest) carries a fixed cost that
  dominates small transfers — the paper's headline observation that *call
  count*, not bytes, drives overhead (Sections 1 and 5.3.1).
- The Rust data path is ~3.43x slower than the C/AVX-512 one (the "343%
  improvement" of Section 4.2 / Fig. 11).
- Manager: rank allocation from NAAV costs ~36 ms; a rank reset costs
  ~597 ms (Section 4.2 "Manager's Overhead").
- Fig. 9c fixes the ratio between per-byte and per-call virtualization
  costs: checksum overhead falls from 2.33x at 8 MB/DPU to 1.29x at
  60 MB/DPU.

Absolute values will not match the authors' Xeon 4215 testbed — the
assertions in ``tests/analysis/test_paper_shapes.py`` check *shapes*
(who wins, rough factors, crossovers), as the reproduction contract says.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DPU_FREQUENCY_HZ, PAGE_SIZE, PIPELINE_DEPTH


@dataclass(frozen=True)
class CostModel:
    """All timing constants, in seconds (or cycles where noted), calibrated
    against the §5.1 testbed measurements."""

    # -- DPU core ----------------------------------------------------------
    dpu_frequency_hz: float = DPU_FREQUENCY_HZ
    pipeline_depth: int = PIPELINE_DEPTH
    #: MRAM<->WRAM DMA: fixed setup cycles + cycles per byte.  ~77-cycle
    #: setup and ~0.5 cycles/byte match published UPMEM microbenchmarks.
    dma_setup_cycles: float = 77.0
    dma_cycles_per_byte: float = 0.5

    # -- Host <-> rank transfers (native, performance mode) ----------------
    #: Fixed cost of one rank-level transfer operation (driver call, CI
    #: programming, DMA kick).
    rank_op_fixed: float = 1.5e-6
    #: Sustained host<->rank copy bandwidth, bytes/second.  UPMEM rank
    #: transfer peaks around a few GB/s; 2.8 GB/s reproduces the scale of
    #: Fig. 9's checksum times.
    rank_xfer_bandwidth: float = 2.8e9
    #: Host-side interleaving shuffle throughput for the C/AVX-512 flavour
    #: (bytes/second).  The native SDK always uses this flavour.
    interleave_bw_c: float = 9.0e9
    #: Rust/AVX2 data-path slowdown vs C/AVX-512.  Section 4.2 quotes a
    #: per-function improvement of "up to 343%", but Fig. 13's end-to-end
    #: breakdown (T-data = 98.3% of a ~1.5 s write in Rust vs ~30 ms in C
    #: for the same 480 MB) implies a far larger data-path gap; we
    #: calibrate to the Fig. 11/13 behaviour, which the ablation tests
    #: assert (rust >= 3.43x slower on the write path).
    rust_slowdown: float = 30.0
    #: Fixed cost of a serial per-DPU copy (dpu_copy_to/from one DPU).
    dpu_copy_fixed: float = 1.2e-6

    # -- Control interface --------------------------------------------------
    #: One native CI operation (status poll, command byte) through mmap.
    ci_op_native: float = 2e-6
    #: Guest-side polling period during dpu_launch(SYNCHRONOUS): the SDK
    #: re-reads DPU run status at this cadence.  Chosen so a 2.8 s checksum
    #: run observes ~28000 CI ops, matching Section 5.3.1's "8000 to 28000".
    launch_poll_period: float = 100e-6
    #: Mandatory CI operations per launch (boot fault clear, thread resume,
    #: per-chip status reads) regardless of run length.
    ci_ops_per_launch: int = 640

    # -- Virtualization: guest <-> VMM transitions ---------------------------
    #: Guest write to the virtio kick register -> KVM trap -> Firecracker
    #: event handler dispatch.
    vmexit_cost: float = 8e-6
    #: IRQ injection + guest driver wakeup on completion.
    irq_inject_cost: float = 12e-6
    #: Firecracker event-loop handling of one queue notification (epoll
    #: wakeup, descriptor fetch) before any payload work.  Together with
    #: the trap/IRQ and backend fixed costs, one data request carries
    #: ~90 us of fixed overhead vs ~3 us for a native small operation —
    #: the ~26x-per-IO-op regime the paper cites for Firecracker.
    event_dispatch_cost: float = 25e-6
    #: Extra per-roundtrip latency a *synchronous* CI operation pays inside
    #: a VM on top of the native CI cost.  Drives the launch-poll overhead
    #: and the small-request pathologies.
    ci_virt_roundtrip: float = 50e-6

    # -- Virtualization: per-page costs --------------------------------------
    #: Frontend page management: pinning user pages and collecting their
    #: GPAs (Section 5.4.1's "Page" step).
    page_mgmt_per_page: float = 100e-9
    #: Frontend serialization of the transfer matrix, per page pointer.
    serialize_per_page: float = 60e-9
    #: Backend deserialization, per page pointer.
    deserialize_per_page: float = 50e-9
    #: GPA->HVA translation, per page, before dividing by the translation
    #: thread count (Section 4.2 uses several threads to accelerate it).
    translate_per_page: float = 160e-9
    #: Fixed start-up cost of the threaded translation (thread handoff).
    translate_fixed: float = 5e-6
    #: Plain in-guest memcpy bandwidth (prefetch-cache hits, batch-buffer
    #: accumulation) — ordinary DRAM copies, no interleaving.
    guest_copy_bandwidth: float = 8.0e9

    #: Content-aware transfer cache (``Optimization(cache=True)`` only —
    #: the cache-off model never charges these).  Digesting one 4 KiB page
    #: with an xxhash-class hash runs at roughly memcpy speed on one core.
    digest_per_page: float = 120e-9
    #: Frontend per-entry digest-index probe (dict lookup + bookkeeping).
    cache_lookup_cost: float = 50e-9
    #: Backend per-SKIP-extent resident-index validation.
    cache_skip_lookup_cost: float = 60e-9

    #: Contention between concurrently-handled rank requests in the VMM.
    #: Fig. 16 shows parallel per-rank write requests each taking ~6 s
    #: where a solo request takes ~1.1 s: the backend threads share the
    #: host memory bus, so parallel handling wins ~1.4x on writes and
    #: ~1.13x end-to-end (Fig. 15), not a full rank-count factor.
    #: 0 = perfectly parallel, 1 = fully serialized.
    parallel_contention: float = 0.55
    #: Contention between concurrent *native* rank transfers (the SDK's
    #: per-rank threads share the memory bus too, but without the VMM's
    #: thread handoffs): aggregate bandwidth over 8 ranks scales ~3x.
    native_parallel_contention: float = 0.25

    # -- QoS bus arbitration (repro.qos; opt-in) ------------------------------
    #: Decay window for a flow's *measured* bus demand: activity older
    #: than a few windows no longer counts as contention.  Sized to a few
    #: noisy-neighbor bulk operations.
    qos_activity_window: float = 0.25
    #: Weighted-fair-queueing service quantum in the Firecracker event
    #: loop: with QoS enforced, a small request waits at most one quantum
    #: of each busy neighbor instead of that neighbor's whole in-flight
    #: operation (the FIFO head-of-line pathology).
    qos_wfq_quantum: float = 0.5e-3
    #: Flows whose demand estimate falls below this are treated as idle.
    qos_min_active_demand: float = 0.01

    # -- Backend execution ----------------------------------------------------
    #: Worker-thread handoff for one DPU-operation batch.
    backend_dispatch: float = 10e-6
    #: Per-request bookkeeping in the backend module.
    backend_request_fixed: float = 35e-6

    # -- Manager ---------------------------------------------------------------
    #: dpu_alloc-triggered allocation of a NAAV rank (Section 4.2: 36 ms).
    manager_alloc: float = 36e-3
    #: Full rank reset: memset of 64 x 64 MB MRAM (Section 4.2: 597 ms).
    manager_reset: float = 597e-3
    #: Observer-thread sysfs polling period.
    manager_observe_period: float = 50e-3
    #: Manager retry backoff *base* when no rank is available: attempt N
    #: waits ``manager_retry_timeout * backoff_factor**N`` (plus jitter),
    #: capped at ``manager_retry_max``.
    manager_retry_timeout: float = 100e-3
    #: Upper bound on one manager retry backoff interval.
    manager_retry_max: float = 1.6

    # -- Fault detection / recovery -------------------------------------------
    #: Frontend retry backoff base after a transient transport fault:
    #: attempt N adds ``transport_retry_backoff * 2**(N-1)`` of wait.
    transport_retry_backoff: float = 200e-6
    #: Modeled integrity-check latency paid to detect a corrupted
    #: virtio-pim message before it is re-sent.
    transport_corruption_detect: float = 50e-6
    #: Watchdog timeout that detects a hung backend worker.
    backend_watchdog_timeout: float = 5e-3

    # -- VM lifecycle -------------------------------------------------------------
    #: Extra boot time contributed by one vUPMEM device (Section 3.2: <=2 ms).
    vupmem_boot_cost: float = 2e-3
    #: Device configuration request during driver init.
    config_request_cost: float = 30e-6

    # -- derived helpers ------------------------------------------------------

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.dpu_frequency_hz

    def pipeline_time(self, per_tasklet_instructions) -> float:
        """Wall time of a DPU run given each tasklet's issued instructions.

        Implements the 11-cycle hazard rule: with T >= 11 busy tasklets the
        pipeline retires one instruction per cycle; below that each tasklet
        can issue at most once per 11 cycles.
        """
        counts = list(per_tasklet_instructions)
        if not counts:
            return 0.0
        total = float(sum(counts))
        bound = self.pipeline_depth * float(max(counts))
        return self.cycles_to_seconds(max(total, bound))

    def dma_time(self, nr_ops: int, total_bytes: int) -> float:
        """MRAM<->WRAM DMA time for ``nr_ops`` transfers of ``total_bytes``."""
        cycles = nr_ops * self.dma_setup_cycles + total_bytes * self.dma_cycles_per_byte
        return self.cycles_to_seconds(cycles)

    def rank_transfer_time(self, total_bytes: int) -> float:
        """Bulk host<->rank copy time (excluding interleave CPU work)."""
        return self.rank_op_fixed + total_bytes / self.rank_xfer_bandwidth

    def interleave_time(self, total_bytes: int, rust: bool = False) -> float:
        """CPU time spent byte-interleaving ``total_bytes``."""
        bw = self.interleave_bw_c / (self.rust_slowdown if rust else 1.0)
        return total_bytes / bw

    def transition_roundtrip(self) -> float:
        """One full guest->VMM->guest transition (kick, dispatch, IRQ)."""
        return self.vmexit_cost + self.event_dispatch_cost + self.irq_inject_cost

    def pages_of(self, nr_bytes: int) -> int:
        return (nr_bytes + PAGE_SIZE - 1) // PAGE_SIZE

    def with_overrides(self, **kwargs) -> "CostModel":
        """Return a copy with selected constants replaced (for ablations)."""
        return replace(self, **kwargs)


#: The default, calibrated model used throughout the library.
DEFAULT_COST_MODEL = CostModel()


# -- shared-bus arbitration (repro.qos) --------------------------------------
#
# Co-resident VMs never overlap in *simulated* time — the fleet replays
# sessions serially on one clock — so cross-VM contention cannot emerge
# from interleaved events.  It is modeled declaratively instead: each VM
# registers a flow with a demand profile (declared up front, or measured
# as a decaying window of its actual bus seconds), and every operation
# asks the arbiter what the *other* flows' demand costs it.  Two modes:
#
# - FIFO (QoS registered but not enforced): the Firecracker event loop
#   picks requests in arrival order, so a small request behind a bulk
#   neighbor waits out the neighbor's in-flight operation (head-of-line
#   blocking), and the bus is a free-for-all while it transfers.
# - WFQ (QoS enforced): virtual-finish-time scheduling with a service
#   quantum caps the head-of-line wait at one quantum per busy neighbor,
#   and bus bandwidth divides by flow weight.


@dataclass
class BusFlow:
    """One VM's registered demand on the shared host bus."""

    flow_id: str
    weight: float = 1.0
    #: Declared offered load in [0, 1]; ``None`` = derive from the
    #: measured, exponentially-decayed bus-seconds window.
    declared_demand: Optional[float] = None
    #: Declared bus seconds of one typical operation (the head-of-line
    #: blocking scale); ``None`` = measured running mean.
    declared_mean_op_s: Optional[float] = None
    busy_s: float = 0.0
    last_update: float = 0.0
    measured_mean_op_s: float = 0.0
    ops: int = 0
    #: Virtual finish time (WFQ bookkeeping, maintained by the event loop).
    virtual_finish: float = 0.0


@dataclass(frozen=True)
class Arbitration:
    """What sharing the bus cost one operation."""

    queue_s: float        #: dispatch wait (head-of-line or WFQ quantum)
    share_s: float        #: service stretch from bandwidth sharing
    contenders: int       #: active neighbor flows considered
    mode: str             #: ``fifo`` or ``wfq``

    @property
    def total_s(self) -> float:
        return self.queue_s + self.share_s


class BandwidthArbiter:
    """The shared host bus as a weighted-fair resource across VMs.

    Purely computational (no metrics, no clock writes): callers pass the
    current simulated time in and fold the returned durations into their
    own modeled op times, preserving the single-writer clock rule.
    """

    #: EMA factor for the measured per-op bus-seconds mean.
    MEAN_ALPHA = 0.2

    def __init__(self, cost: CostModel) -> None:
        self.cost = cost
        self._flows: Dict[str, BusFlow] = {}

    # -- registration --------------------------------------------------------

    def register(self, flow_id: str, weight: float = 1.0,
                 demand: Optional[float] = None,
                 mean_op_s: Optional[float] = None) -> BusFlow:
        if flow_id in self._flows:
            raise ValueError(f"bus flow {flow_id!r} is already registered")
        if weight <= 0:
            raise ValueError(f"flow weight must be positive, got {weight}")
        flow = BusFlow(flow_id=flow_id, weight=weight,
                       declared_demand=demand, declared_mean_op_s=mean_op_s)
        self._flows[flow_id] = flow
        return flow

    def unregister(self, flow_id: str) -> None:
        self._flows.pop(flow_id, None)

    def flow(self, flow_id: str) -> BusFlow:
        return self._flows[flow_id]

    @property
    def flows(self) -> List[BusFlow]:
        return list(self._flows.values())

    def set_weight(self, flow_id: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError(f"flow weight must be positive, got {weight}")
        self._flows[flow_id].weight = weight

    # -- demand accounting ---------------------------------------------------

    def _decay(self, flow: BusFlow, now: float) -> None:
        dt = now - flow.last_update
        if dt > 0:
            flow.busy_s *= math.exp(-dt / self.cost.qos_activity_window)
            flow.last_update = now

    def record(self, flow_id: str, bus_seconds: float, now: float) -> None:
        """Account one operation's bus usage against its flow's window."""
        flow = self._flows[flow_id]
        self._decay(flow, now)
        flow.busy_s += max(0.0, bus_seconds)
        flow.ops += 1
        if bus_seconds > 0:
            if flow.measured_mean_op_s <= 0:
                flow.measured_mean_op_s = bus_seconds
            else:
                flow.measured_mean_op_s += self.MEAN_ALPHA * (
                    bus_seconds - flow.measured_mean_op_s)

    def demand(self, flow: BusFlow, now: float) -> float:
        """The flow's offered load in [0, 1] (declared beats measured)."""
        if flow.declared_demand is not None:
            return min(1.0, max(0.0, flow.declared_demand))
        self._decay(flow, now)
        return min(1.0, flow.busy_s / self.cost.qos_activity_window)

    def mean_op_s(self, flow: BusFlow) -> float:
        if flow.declared_mean_op_s is not None:
            return max(0.0, flow.declared_mean_op_s)
        return flow.measured_mean_op_s

    def _active_neighbors(self, flow_id: str, now: float,
                          ) -> List[Tuple[BusFlow, float]]:
        out = []
        for other in self._flows.values():
            if other.flow_id == flow_id:
                continue
            load = self.demand(other, now)
            if load >= self.cost.qos_min_active_demand:
                out.append((other, load))
        return out

    # -- the two cost components ---------------------------------------------

    def _residual(self, flow: BusFlow, now: float) -> float:
        """Remaining bus time of the neighbor's in-flight operation.

        Phase-deterministic: the fraction already served is derived from
        where ``now`` falls inside the op period, so repeated requests
        sample the whole [0, mean_op) range — a latency *distribution*,
        not a constant — while staying exactly reproducible.
        """
        period = self.mean_op_s(flow)
        if period <= 0:
            return 0.0
        phase = (now / period) % 1.0
        return period * (1.0 - phase)

    def queue_delay(self, flow_id: str, now: float, fair: bool) -> float:
        """Expected wait before the event loop serves this flow's request."""
        me = self._flows[flow_id]
        delay = 0.0
        for other, load in self._active_neighbors(me.flow_id, now):
            residual = self._residual(other, now)
            if fair:
                residual = min(residual, self.cost.qos_wfq_quantum)
            delay += load * residual
        return delay

    def bus_share(self, flow_id: str, bus_seconds: float, now: float,
                  fair: bool) -> float:
        """Service stretch of ``bus_seconds`` from sharing the bus."""
        if bus_seconds <= 0:
            return 0.0
        me = self._flows[flow_id]
        neighbors = self._active_neighbors(me.flow_id, now)
        if not neighbors:
            return 0.0
        if fair:
            pressure = sum(load * other.weight for other, load in neighbors)
            steal = pressure / (me.weight + pressure)
        else:
            steal = min(1.0, sum(load for _, load in neighbors))
        return bus_seconds * self.cost.parallel_contention * steal

    def contention_factor(self, flow_id: str, base: float, now: float,
                          fair: bool) -> float:
        """Intra-VM parallel-rank contention, raised by neighbor demand.

        Replaces the fixed ``parallel_contention`` constant on
        virtualized transfer paths: a VM combining its own parallel rank
        operations contends harder when co-resident flows occupy the bus.
        """
        me = self._flows[flow_id]
        neighbors = self._active_neighbors(me.flow_id, now)
        if not neighbors:
            return base
        if fair:
            pressure = sum(load * other.weight for other, load in neighbors)
            steal = pressure / (me.weight + pressure)
        else:
            steal = min(1.0, sum(load for _, load in neighbors))
        return min(1.0, base + (1.0 - base) * steal)

    def arbitrate(self, flow_id: str, bus_seconds: float, now: float,
                  fair: bool) -> Arbitration:
        """Full arbitration of one operation: dispatch wait + bus share."""
        neighbors = self._active_neighbors(flow_id, now)
        return Arbitration(
            queue_s=self.queue_delay(flow_id, now, fair),
            share_s=self.bus_share(flow_id, bus_seconds, now, fair),
            contenders=len(neighbors),
            mode="wfq" if fair else "fifo",
        )

    # -- whole-workload helper (benchmarks/bench_multiplexing.py) ------------

    def contended_makespan(self, jobs: Sequence[Tuple[float, float]],
                           contention: Optional[float] = None) -> float:
        """Modeled makespan of jobs sharing the bus concurrently.

        ``jobs`` is ``(bus_seconds, total_seconds)`` per tenant.  Only the
        transfer-bound fraction of each job contends: compute overlaps
        freely, while every bus second beyond the longest job's own adds
        ``contention`` of serialization.  This replaces the old
        lower/upper *bound pair* (perfect parallelism vs full fixed-factor
        contention) with one number strictly between them.
        """
        jobs = list(jobs)
        if not jobs:
            return 0.0
        for bus_s, total_s in jobs:
            if bus_s < 0 or total_s < 0 or bus_s > total_s + 1e-12:
                raise ValueError(
                    f"job ({bus_s}, {total_s}) needs 0 <= bus <= total")
        if contention is None:
            contention = self.cost.native_parallel_contention
        peak_bus, peak_total = max(jobs, key=lambda job: job[1])
        extra_bus = sum(bus for bus, _ in jobs) - peak_bus
        return peak_total + contention * extra_bus
