"""Lazily materialized byte-addressable memory regions.

A full testbed exposes 480 DPUs x 64 MB of MRAM = 30 GB, which we cannot
(and need not) allocate eagerly.  :class:`MemoryRegion` materializes fixed
size segments on first write; reads of untouched areas return zeros, which
matches DRAM content after the manager's reset-to-zero policy (Section 3.5).

Segments are the *accounting* granularity (checkpoints, memory usage, the
reset policy all count 64 KB segments), but the *backing store* is coarser:
segments live inside pooled 16 MB extents, so a bulk transfer crossing many
segments is one slice copy per extent instead of one Python-level copy per
64 KB.  A per-extent presence mask records which segments have been
written; unwritten segments read as zero even though their extent bytes
may hold recycled garbage.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from repro.errors import MemoryAccessError

BytesLike = Union[bytes, bytearray, memoryview, np.ndarray]

#: Materialization granularity.  64 KB balances dict overhead against waste.
SEGMENT_SIZE = 64 * 1024

#: Backing-store granularity: segments per pooled extent (16 MB).
EXTENT_SEGMENTS = 256
EXTENT_BYTES = EXTENT_SEGMENTS * SEGMENT_SIZE


class _ExtentPool:
    """Process-wide recycler for extent backing arrays.

    A freshly allocated numpy array pays a minor page fault per 4 KB on
    first touch, and the C allocator does not reliably keep large chunks
    warm between runs — bulk transfers into new regions then run several
    times slower than memcpy.  Recycling keeps extent pages resident.
    Recycled extents are handed out *dirty*: the presence mask guarantees
    stale bytes are never visible (a segment only reads from its extent
    after it has been written, and partial writes zero the uncovered
    remainder of a newly present segment).
    """

    def __init__(self, max_bytes: int = 6 << 30) -> None:
        self.max_bytes = max_bytes
        self._free: Dict[int, list] = {}
        self._held = 0

    def acquire(self, nbytes: int) -> np.ndarray:
        lst = self._free.get(nbytes)
        if lst:
            self._held -= nbytes
            return lst.pop()
        return np.empty(nbytes, dtype=np.uint8)

    def release_all(self, extents: Dict[int, np.ndarray]) -> None:
        """Take every extent of ``extents`` into the free list (up to the
        byte cap) and clear the dict.  Only called on backing arrays the
        region owns — nothing else ever holds a reference to them."""
        for ext in extents.values():
            if self._held + ext.size <= self.max_bytes:
                self._free.setdefault(ext.size, []).append(ext)
                self._held += ext.size
        extents.clear()


#: Shared across all regions of the process (the simulator is
#: single-threaded); bounded at ``max_bytes`` of resident backing store.
#: The cap is sized to hold the working set of a full 64-DPU rank session
#: (~4 GB of concurrently live MRAM + guest memory) so back-to-back
#: sessions never re-fault their transfer arenas.
EXTENT_POOL = _ExtentPool()


def _as_u8(data: BytesLike) -> np.ndarray:
    """View ``data`` as a contiguous uint8 numpy array without copying."""
    if isinstance(data, np.ndarray):
        if (data.dtype == np.uint8 and data.ndim == 1
                and data.flags.c_contiguous):
            return data
        return np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    return np.frombuffer(bytes(data) if isinstance(data, memoryview) else data,
                         dtype=np.uint8)


class MemoryRegion:
    """A byte-addressable region of ``size`` bytes, materialized on demand
    (backs the MRAM/WRAM/IRAM memories of §2).

    Supports the three memory kinds of a DPU (MRAM, WRAM, IRAM) as well as
    guest physical memory in the virtualization layer.
    """

    def __init__(self, size: int, name: str = "mem") -> None:
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        self.size = size
        self.name = name
        # Small regions (WRAM, IRAM) get right-sized extents; large ones
        # use the shared 16 MB pool class.
        nr_segments = -(-size // SEGMENT_SIZE)
        self._extent_segs = min(EXTENT_SEGMENTS, nr_segments)
        self._extent_bytes = self._extent_segs * SEGMENT_SIZE
        self._extents: Dict[int, np.ndarray] = {}
        self._masks: Dict[int, np.ndarray] = {}
        self._nr_present = 0
        #: Bumped whenever the backing store is dropped wholesale
        #: (``fill(0)``, which releases extents back to the shared pool).
        #: Holders of pinned views (:meth:`pin_span`) must revalidate
        #: against this before writing — a recycled extent may already
        #: back a *different* region.
        self.generation = 0

    # -- bounds -----------------------------------------------------------

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise MemoryAccessError(
                f"{self.name}: access [{offset}, {offset + length}) outside "
                f"region of {self.size} bytes"
            )

    # -- data path --------------------------------------------------------

    def read(self, offset: int, length: int) -> np.ndarray:
        """Return ``length`` bytes starting at ``offset`` as a uint8 array."""
        self._check(offset, length)
        ext_idx, ext_off = divmod(offset, self._extent_bytes)
        seg = ext_off // SEGMENT_SIZE
        if ext_off + length <= (seg + 1) * SEGMENT_SIZE:
            # Fast path: the access stays inside one segment (every DMA
            # block and metadata descriptor lands here).
            ext = self._extents.get(ext_idx)
            if ext is None or not self._masks[ext_idx][seg]:
                return np.zeros(length, dtype=np.uint8)
            return ext[ext_off:ext_off + length].copy()
        out = np.empty(length, dtype=np.uint8)
        self._fill_from_segments(offset, out)
        return out

    def read_into(self, offset: int, out: np.ndarray) -> np.ndarray:
        """Fill ``out`` (1-D uint8) from the region — no allocation.

        The scatter-gather data plane reads through here with pooled
        buffers, so bulk transfers stop paying one fresh allocation (and
        one zero-fill) per hop.
        """
        self._check(offset, out.size)
        self._fill_from_segments(offset, out)
        return out

    def _fill_from_segments(self, offset: int, out: np.ndarray) -> None:
        length = out.size
        extent_bytes = self._extent_bytes
        pos = 0
        while pos < length:
            ext_idx, ext_off = divmod(offset + pos, extent_bytes)
            chunk = min(length - pos, extent_bytes - ext_off)
            ext = self._extents.get(ext_idx)
            if ext is None:
                out[pos:pos + chunk] = 0
                pos += chunk
                continue
            mask = self._masks[ext_idx]
            s0 = ext_off // SEGMENT_SIZE
            s1 = (ext_off + chunk - 1) // SEGMENT_SIZE
            span = mask[s0:s1 + 1]
            if span.all():
                # Fully materialized span: one slice copy for the whole
                # extent's share (the bulk-transfer hot path).
                out[pos:pos + chunk] = ext[ext_off:ext_off + chunk]
            elif not span.any():
                out[pos:pos + chunk] = 0
            else:
                end = ext_off + chunk
                p, o = pos, ext_off
                while o < end:
                    seg = o // SEGMENT_SIZE
                    piece = min(end - o, (seg + 1) * SEGMENT_SIZE - o)
                    if mask[seg]:
                        out[p:p + piece] = ext[o:o + piece]
                    else:
                        out[p:p + piece] = 0
                    p += piece
                    o += piece
            pos += chunk

    def write(self, offset: int, data: BytesLike) -> None:
        """Write ``data`` starting at ``offset``."""
        buf = _as_u8(data)
        self._check(offset, buf.size)
        if buf.size == 0:
            return
        extent_bytes = self._extent_bytes
        pos = 0
        while pos < buf.size:
            ext_idx, ext_off = divmod(offset + pos, extent_bytes)
            chunk = min(buf.size - pos, extent_bytes - ext_off)
            ext = self._extents.get(ext_idx)
            if ext is None:
                ext = EXTENT_POOL.acquire(extent_bytes)
                self._extents[ext_idx] = ext
                mask = np.zeros(self._extent_segs, dtype=bool)
                self._masks[ext_idx] = mask
            else:
                mask = self._masks[ext_idx]
            s0 = ext_off // SEGMENT_SIZE
            end = ext_off + chunk
            s1 = (end - 1) // SEGMENT_SIZE
            # A recycled extent holds stale bytes: when a *partial* write
            # first materializes an edge segment, zero the uncovered part
            # so the untouched remainder still reads back as zero.
            head = ext_off - s0 * SEGMENT_SIZE
            if head and not mask[s0]:
                ext[s0 * SEGMENT_SIZE:ext_off] = 0
            tail_end = (s1 + 1) * SEGMENT_SIZE
            if end != tail_end and not mask[s1]:
                ext[end:tail_end] = 0
            ext[ext_off:end] = buf[pos:pos + chunk]
            newly = (s1 - s0 + 1) - int(np.count_nonzero(mask[s0:s1 + 1]))
            if newly:
                self._nr_present += newly
                mask[s0:s1 + 1] = True
            pos += chunk

    def fill(self, value: int = 0) -> None:
        """Set the whole region to ``value``.

        Filling with zero simply drops all materialized segments (untouched
        memory reads back as zero), which is how the manager's rank reset is
        implemented cheaply.
        """
        if value == 0:
            EXTENT_POOL.release_all(self._extents)
            self._masks.clear()
            self._nr_present = 0
            self.generation += 1
        else:
            # Non-zero fill of unmaterialized space must materialize it; we
            # forbid it for huge regions since nothing in the stack needs it.
            if self.size > 1 << 30:
                raise MemoryAccessError(
                    f"{self.name}: non-zero fill of a {self.size}-byte region "
                    "is not supported"
                )
            self.write(0, np.full(self.size, value, dtype=np.uint8))

    # -- pinned views (plan-cache fast path) --------------------------------

    def pin_span(self, offset: int, length: int) -> np.ndarray:
        """Return a writable view of ``[offset, offset + length)``.

        The span must stay inside one extent (use :meth:`pin_chunks` to
        cover arbitrary ranges).  Pinning materializes the covered
        segments — zeroed, exactly as an ordinary partial write would
        leave their uncovered bytes — so writing through the view is
        equivalent to :meth:`write` for every observer (``read``,
        ``materialized_bytes``, ``is_zero``, snapshots).

        Views are invalidated by ``fill(0)``: callers must compare the
        :attr:`generation` they captured at pin time before reusing one.
        """
        self._check(offset, length)
        if length == 0:
            return np.empty(0, dtype=np.uint8)
        ext_idx, ext_off = divmod(offset, self._extent_bytes)
        if ext_off + length > self._extent_bytes:
            raise MemoryAccessError(
                f"{self.name}: pinned span [{offset}, {offset + length}) "
                f"crosses a {self._extent_bytes}-byte extent boundary"
            )
        ext = self._extents.get(ext_idx)
        if ext is None:
            ext = EXTENT_POOL.acquire(self._extent_bytes)
            self._extents[ext_idx] = ext
            mask = np.zeros(self._extent_segs, dtype=bool)
            self._masks[ext_idx] = mask
        else:
            mask = self._masks[ext_idx]
        s0 = ext_off // SEGMENT_SIZE
        s1 = (ext_off + length - 1) // SEGMENT_SIZE
        for seg in range(s0, s1 + 1):
            if not mask[seg]:
                # Zero the *whole* segment (not just the uncovered edge):
                # replays rewrite the pinned span itself, but the first
                # materialization must leave everything readable-as-zero.
                ext[seg * SEGMENT_SIZE:(seg + 1) * SEGMENT_SIZE] = 0
                mask[seg] = True
                self._nr_present += 1
        return ext[ext_off:ext_off + length]

    def pin_chunks(self, offset: int, length: int) -> list:
        """Pin ``[offset, offset + length)`` as a list of per-extent views."""
        self._check(offset, length)
        views = []
        pos = 0
        while pos < length:
            chunk = min(length - pos,
                        self._extent_bytes - (offset + pos) % self._extent_bytes)
            views.append(self.pin_span(offset + pos, chunk))
            pos += chunk
        return views

    # -- snapshots (checkpoint/restore support) -----------------------------

    def snapshot_segments(self) -> Dict[int, np.ndarray]:
        """Copy of the materialized segments (sparse checkpoint)."""
        out: Dict[int, np.ndarray] = {}
        for ext_idx in sorted(self._extents):
            ext = self._extents[ext_idx]
            mask = self._masks[ext_idx]
            base = ext_idx * self._extent_segs
            for seg in np.nonzero(mask)[0]:
                start = int(seg) * SEGMENT_SIZE
                out[base + int(seg)] = ext[start:start + SEGMENT_SIZE].copy()
        return out

    def load_segments(self, segments: Dict[int, np.ndarray]) -> None:
        """Replace contents with a snapshot from :meth:`snapshot_segments`."""
        for idx, src in segments.items():
            if idx < 0 or idx * SEGMENT_SIZE >= self.size:
                raise MemoryAccessError(
                    f"{self.name}: snapshot segment {idx} outside region"
                )
            if _as_u8(src).size > SEGMENT_SIZE:
                raise MemoryAccessError(
                    f"{self.name}: snapshot segment {idx} larger than "
                    f"{SEGMENT_SIZE} bytes"
                )
        # All inputs validated; the writes below cannot fail, so the
        # replacement is effectively atomic.
        self.fill(0)
        for idx, src in segments.items():
            self.write(idx * SEGMENT_SIZE, src)

    def __del__(self) -> None:
        # Recycle backing arrays when the region is collected (a fresh
        # VPim per run would otherwise re-fault every page).  Guarded:
        # module globals may be gone at interpreter shutdown.
        try:
            EXTENT_POOL.release_all(self._extents)
        except Exception:  # pragma: no cover - shutdown races
            pass

    # -- introspection ----------------------------------------------------

    @property
    def extent_bytes(self) -> int:
        """Backing-store granularity — the span limit for :meth:`pin_span`."""
        return self._extent_bytes

    @property
    def materialized_bytes(self) -> int:
        """Bytes of backing store actually allocated (for memory accounting)."""
        return self._nr_present * SEGMENT_SIZE

    def is_zero(self) -> bool:
        """True if every byte reads back as zero (used by isolation tests)."""
        for ext_idx, ext in self._extents.items():
            mask = self._masks[ext_idx]
            if not mask.any():
                continue
            rows = ext.reshape(self._extent_segs, SEGMENT_SIZE)
            if rows[mask].any():
                return False
        return True
