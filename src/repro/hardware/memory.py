"""Lazily materialized byte-addressable memory regions.

A full testbed exposes 480 DPUs x 64 MB of MRAM = 30 GB, which we cannot
(and need not) allocate eagerly.  :class:`MemoryRegion` materializes fixed
size segments on first write; reads of untouched areas return zeros, which
matches DRAM content after the manager's reset-to-zero policy (Section 3.5).
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from repro.errors import MemoryAccessError

BytesLike = Union[bytes, bytearray, memoryview, np.ndarray]

#: Materialization granularity.  64 KB balances dict overhead against waste.
SEGMENT_SIZE = 64 * 1024


def _as_u8(data: BytesLike) -> np.ndarray:
    """View ``data`` as a contiguous uint8 numpy array without copying."""
    if isinstance(data, np.ndarray):
        return np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    return np.frombuffer(bytes(data) if isinstance(data, memoryview) else data,
                         dtype=np.uint8)


class MemoryRegion:
    """A byte-addressable region of ``size`` bytes, materialized on demand
    (backs the MRAM/WRAM/IRAM memories of §2).

    Supports the three memory kinds of a DPU (MRAM, WRAM, IRAM) as well as
    guest physical memory in the virtualization layer.
    """

    def __init__(self, size: int, name: str = "mem") -> None:
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        self.size = size
        self.name = name
        self._segments: Dict[int, np.ndarray] = {}

    # -- bounds -----------------------------------------------------------

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise MemoryAccessError(
                f"{self.name}: access [{offset}, {offset + length}) outside "
                f"region of {self.size} bytes"
            )

    # -- data path --------------------------------------------------------

    def read(self, offset: int, length: int) -> np.ndarray:
        """Return ``length`` bytes starting at ``offset`` as a uint8 array."""
        self._check(offset, length)
        out = np.zeros(length, dtype=np.uint8)
        pos = 0
        while pos < length:
            seg_idx, seg_off = divmod(offset + pos, SEGMENT_SIZE)
            chunk = min(length - pos, SEGMENT_SIZE - seg_off)
            seg = self._segments.get(seg_idx)
            if seg is not None:
                out[pos:pos + chunk] = seg[seg_off:seg_off + chunk]
            pos += chunk
        return out

    def write(self, offset: int, data: BytesLike) -> None:
        """Write ``data`` starting at ``offset``."""
        buf = _as_u8(data)
        self._check(offset, buf.size)
        pos = 0
        while pos < buf.size:
            seg_idx, seg_off = divmod(offset + pos, SEGMENT_SIZE)
            chunk = min(buf.size - pos, SEGMENT_SIZE - seg_off)
            seg = self._segments.get(seg_idx)
            if seg is None:
                seg = np.zeros(SEGMENT_SIZE, dtype=np.uint8)
                self._segments[seg_idx] = seg
            seg[seg_off:seg_off + chunk] = buf[pos:pos + chunk]
            pos += chunk

    def fill(self, value: int = 0) -> None:
        """Set the whole region to ``value``.

        Filling with zero simply drops all materialized segments (untouched
        memory reads back as zero), which is how the manager's rank reset is
        implemented cheaply.
        """
        if value == 0:
            self._segments.clear()
        else:
            for seg in self._segments.values():
                seg[:] = value
            # Non-zero fill of unmaterialized space must materialize it; we
            # forbid it for huge regions since nothing in the stack needs it.
            if self.size > 1 << 30:
                raise MemoryAccessError(
                    f"{self.name}: non-zero fill of a {self.size}-byte region "
                    "is not supported"
                )
            full = np.full(self.size, value, dtype=np.uint8)
            self._segments.clear()
            self.write(0, full)

    # -- snapshots (checkpoint/restore support) -----------------------------

    def snapshot_segments(self) -> Dict[int, np.ndarray]:
        """Copy of the materialized segments (sparse checkpoint)."""
        return {idx: seg.copy() for idx, seg in self._segments.items()}

    def load_segments(self, segments: Dict[int, np.ndarray]) -> None:
        """Replace contents with a snapshot from :meth:`snapshot_segments`."""
        for idx in segments:
            if idx < 0 or idx * SEGMENT_SIZE >= self.size:
                raise MemoryAccessError(
                    f"{self.name}: snapshot segment {idx} outside region"
                )
        self._segments = {idx: seg.copy() for idx, seg in segments.items()}

    # -- introspection ----------------------------------------------------

    @property
    def materialized_bytes(self) -> int:
        """Bytes of backing store actually allocated (for memory accounting)."""
        return len(self._segments) * SEGMENT_SIZE

    def is_zero(self) -> bool:
        """True if every byte reads back as zero (used by isolation tests)."""
        return all(not seg.any() for seg in self._segments.values())
