"""Reusable uint8 buffer pool for the zero-copy data plane.

The simulator moves transfer payloads for real (interleave shuffles,
scatter-gather between guest memory and MRAM), and before this pool every
hop allocated — and usually zero-filled — a fresh numpy array.  For a
64-DPU PrIM step that is hundreds of multi-megabyte allocations whose
lifetime is a single request.  :class:`BufferPool` keeps returned buffers
on exact-size free lists so steady-state traffic runs allocation-free,
mirroring the paper's point that host-side copy plumbing dominates
virtualized PIM cost (Section 5.4.1).

Fault safety: lease buffers with :meth:`lease` (a context manager) or
release in ``finally`` blocks.  Injected transport faults (repro.faults)
unwind through those scopes, so a drill that aborts mid-transfer returns
its buffers instead of leaking them; ``outstanding`` is the invariant the
chaos regression test pins.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

import numpy as np


class BufferPool:
    """Exact-size-keyed pool of contiguous 1-D uint8 scratch buffers.

    Buffers are handed out dirty (no zero fill): callers are expected to
    overwrite every byte, which all data-plane users do by construction.
    """

    def __init__(self, max_buffers_per_size: int = 8,
                 max_pooled_bytes: int = 256 << 20) -> None:
        self._free: Dict[int, List[np.ndarray]] = {}
        self._max_per_size = max_buffers_per_size
        self._max_pooled_bytes = max_pooled_bytes
        self._pooled_bytes = 0
        #: Buffers currently on loan (acquired, not yet released).
        self.outstanding = 0
        #: Times an acquire was served from the free list (cache hit).
        self.reuse_count = 0
        #: Times an acquire had to allocate (cold miss or size churn).
        self.alloc_count = 0

    def acquire(self, size: int) -> np.ndarray:
        """Return a uint8 buffer of exactly ``size`` bytes (contents dirty)."""
        if size < 0:
            raise ValueError(f"buffer size must be >= 0, got {size}")
        stack = self._free.get(size)
        if stack:
            buf = stack.pop()
            self._pooled_bytes -= size
            self.reuse_count += 1
        else:
            buf = np.empty(size, dtype=np.uint8)
            self.alloc_count += 1
        self.outstanding += 1
        return buf

    def release(self, buf: Optional[np.ndarray]) -> None:
        """Return ``buf`` to the pool.  ``None`` is a no-op so callers can
        release unconditionally from ``finally`` blocks."""
        if buf is None:
            return
        self.outstanding -= 1
        size = buf.size
        stack = self._free.setdefault(size, [])
        if (len(stack) < self._max_per_size
                and self._pooled_bytes + size <= self._max_pooled_bytes):
            stack.append(buf)
            self._pooled_bytes += size

    @contextmanager
    def lease(self, size: int) -> Iterator[np.ndarray]:
        """Scoped acquire/release: the buffer is returned even when the
        body raises (e.g. an injected transport fault)."""
        buf = self.acquire(size)
        try:
            yield buf
        finally:
            self.release(buf)

    # -- introspection ----------------------------------------------------

    @property
    def pooled_bytes(self) -> int:
        """Bytes currently parked on free lists."""
        return self._pooled_bytes

    @property
    def free_buffers(self) -> int:
        return sum(len(s) for s in self._free.values())

    def clear(self) -> None:
        """Drop all pooled buffers (loaned buffers stay with borrowers)."""
        self._free.clear()
        self._pooled_bytes = 0


#: Process-wide pool shared by the data plane.  Single-threaded simulator,
#: so no locking; tests may swap in a fresh pool for isolation.
GLOBAL_POOL = BufferPool()
