"""The host machine: CPUs, DRAM and UPMEM DIMMs (Fig. 1).

A :class:`Machine` is the root object of a simulation: it owns the
simulated clock, the cost model, and the physical ranks that the native
driver or the virtualization stack operate on.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import (
    MachineConfig,
    RANKS_PER_DIMM,
    paper_testbed,
)
from repro.errors import HardwareError
from repro.hardware.clock import SimClock
from repro.hardware.dimm import Dimm
from repro.hardware.rank import Rank
from repro.hardware.timing import (
    BandwidthArbiter,
    CostModel,
    DEFAULT_COST_MODEL,
)
from repro.observability import MetricsRegistry
from repro.observability.spans import SpanRecorder


class Machine:
    """A host machine equipped with UPMEM PIM modules (Fig. 1 testbed).

    Owns the machine-wide singletons every layer shares: the simulated
    clock, the cost model, the metrics registry, and the span recorder
    (``docs/observability.md``).
    """

    def __init__(self, config: Optional[MachineConfig] = None,
                 cost: CostModel = DEFAULT_COST_MODEL,
                 clock: Optional[SimClock] = None,
                 spans: Optional[SpanRecorder] = None) -> None:
        self.config = config or paper_testbed()
        self.cost = cost
        #: ``clock`` may be shared: a fleet of machines simulated together
        #: (``repro.cluster``) advances one cluster-wide timeline.
        self.clock = clock or SimClock()
        #: Machine-wide metric store; ranks, the manager, vUPMEM devices
        #: and sessions all register their instruments here.
        self.metrics = MetricsRegistry()
        #: Machine-wide trace context; like the clock, ``spans`` may be
        #: shared fleet-wide so cross-host migrations stay in one trace.
        self.spans = spans or SpanRecorder(self.clock,
                                           registry=self.metrics)
        #: The shared host bus as a weighted-fair resource (``repro.qos``):
        #: flows register here when a VM opts into QoS; with no flows
        #: registered the arbiter is inert and costs nothing.
        self.bus_arbiter = BandwidthArbiter(cost)
        self.ranks: List[Rank] = [Rank(rc, cost, metrics=self.metrics,
                                       spans=self.spans)
                                  for rc in self.config.ranks]
        self.dimms: List[Dimm] = [
            Dimm(i, self.ranks[i * RANKS_PER_DIMM:(i + 1) * RANKS_PER_DIMM])
            for i in range((len(self.ranks) + RANKS_PER_DIMM - 1) // RANKS_PER_DIMM)
        ]

    @property
    def nr_ranks(self) -> int:
        return len(self.ranks)

    @property
    def total_dpus(self) -> int:
        return sum(rank.nr_dpus for rank in self.ranks)

    def rank(self, index: int) -> Rank:
        if not 0 <= index < len(self.ranks):
            raise HardwareError(
                f"machine has {len(self.ranks)} ranks, asked for {index}"
            )
        return self.ranks[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Machine({self.nr_ranks} ranks, {self.total_dpus} DPUs, "
                f"{self.config.host_cores} cores)")
