"""Byte interleaving between host cache lines and PIM chips.

UPMEM DIMMs spread each 64-bit word over the 8 chips of a rank, one byte
per chip (Section 2, Fig. 1: "64 bits" across the DDR4 interface).  The
host CPU must therefore shuffle every transferred buffer; this shuffle is
the hot loop the paper rewrites in C with AVX-512 ("vPIM-rust ... uses AVX2
for byte-interleaving", Section 5.4.1).

The codec below performs the shuffle for real (numpy strided reshape), so
transfers through a rank genuinely exercise this code path, and the cost
model charges it at a rate that depends on the implementation flavour
(C/AVX-512 vs Rust/AVX2).

It also provides the *isolation* property the paper relies on in Section
3.5: a DPU program reading its own MRAM bank sees an interleaved byte
stream of other tenants' data when the device is used as plain memory,
never whole words.
"""

from __future__ import annotations

import numpy as np

from repro.config import CHIPS_PER_RANK

#: Interleaving word width in bytes: one byte goes to each of the 8 chips.
WORD_BYTES = CHIPS_PER_RANK


def _as_flat_u8(data: np.ndarray, nr_chips: int, op: str) -> np.ndarray:
    flat = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    if flat.size % nr_chips != 0:
        raise ValueError(
            f"{op} requires a multiple of {nr_chips} bytes, "
            f"got {flat.size}"
        )
    return flat


def _check_out(out: np.ndarray, size: int, op: str) -> np.ndarray:
    if out.dtype != np.uint8 or out.ndim != 1 or not out.flags.c_contiguous:
        raise ValueError(f"{op}: out must be a contiguous 1-D uint8 array")
    if out.size != size:
        raise ValueError(f"{op}: out has {out.size} bytes, need {size}")
    return out


def interleave_into(data: np.ndarray, out: np.ndarray,
                    nr_chips: int = CHIPS_PER_RANK) -> np.ndarray:
    """:func:`interleave` writing into a caller-provided buffer.

    Single strided pass: the transposed source view is assigned directly
    into ``out``, so no intermediate array is ever materialized.  ``out``
    must not alias ``data``.
    """
    flat = _as_flat_u8(data, nr_chips, "interleave")
    _check_out(out, flat.size, "interleave")
    out.reshape(nr_chips, -1)[...] = flat.reshape(-1, nr_chips).T
    return out


def deinterleave_into(data: np.ndarray, out: np.ndarray,
                      nr_chips: int = CHIPS_PER_RANK) -> np.ndarray:
    """:func:`deinterleave` writing into a caller-provided buffer."""
    flat = _as_flat_u8(data, nr_chips, "deinterleave")
    _check_out(out, flat.size, "deinterleave")
    out.reshape(-1, nr_chips)[...] = flat.reshape(nr_chips, -1).T
    return out


def interleave(data: np.ndarray, nr_chips: int = CHIPS_PER_RANK) -> np.ndarray:
    """Shuffle ``data`` from host linear order to chip-major order.

    ``data`` length must be a multiple of ``nr_chips``.  Returns a new
    array laid out as ``nr_chips`` contiguous per-chip streams.
    """
    flat = _as_flat_u8(data, nr_chips, "interleave")
    return interleave_into(flat, np.empty(flat.size, dtype=np.uint8),
                           nr_chips)


def deinterleave(data: np.ndarray, nr_chips: int = CHIPS_PER_RANK) -> np.ndarray:
    """Inverse of :func:`interleave`."""
    flat = _as_flat_u8(data, nr_chips, "deinterleave")
    return deinterleave_into(flat, np.empty(flat.size, dtype=np.uint8),
                             nr_chips)


def roundtrip_identity(data: np.ndarray) -> bool:
    """Property used in tests: deinterleave(interleave(x)) == x."""
    return bool(np.array_equal(deinterleave(interleave(data)), data))
