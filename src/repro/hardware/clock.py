"""Simulated time.

All performance numbers in this reproduction are *simulated* durations, not
wall-clock measurements: the functional simulator executes real data
operations but accounts their cost through :class:`SimClock`.  This keeps
results deterministic and lets scaled-down datasets preserve the paper's
overhead ratios.
"""

from __future__ import annotations

from typing import List, Tuple


class SimClock:
    """A monotonically advancing simulated clock (seconds).

    The clock supports nested *span* recording so that layers can attribute
    elapsed simulated time to named segments (e.g. ``CPU-DPU``), mirroring
    the paper's application-centric and driver-centric breakdowns.
    """

    def __init__(self) -> None:
        self._now = 0.0
        # Time listeners (the telemetry scrape loop).  Kept as a plain
        # list checked for emptiness on the hot path: a clock with no
        # listeners — every default run — pays one truthiness test per
        # advance and nothing else.
        self._listeners: List = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def add_listener(self, listener) -> None:
        """Register ``listener(now)`` to run after every forward move.

        Listeners observe time; they must never advance it (the callback
        runs after ``_now`` settles, and re-entrant advances would make
        scrape timestamps depend on listener order).
        """
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        """Unregister a listener added with :meth:`add_listener`."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self) -> None:
        for listener in self._listeners:
            listener(self._now)

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self._now += seconds
        if self._listeners:
            self._notify()

    def advance_to(self, deadline: float) -> None:
        """Move time forward to ``deadline`` if it lies in the future."""
        if deadline > self._now:
            self._now = deadline
            if self._listeners:
                self._notify()

    def reset(self) -> None:
        """Reset to t=0 (used between independent experiment runs)."""
        self._now = 0.0


class SpanRecorder:
    """Records named (start, end) spans against a :class:`SimClock` (the
    substrate of the Fig. 13 per-step breakdowns).

    Used by the profiling layer to build breakdowns.  Spans may nest; the
    recorder stores them flat and lets the caller aggregate.
    """

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self.spans: List[Tuple[str, float, float]] = []

    def record(self, name: str, start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        self.spans.append((name, start, end))

    def total(self, name: str) -> float:
        """Sum of durations of all spans with ``name``."""
        return sum(end - start for n, start, end in self.spans if n == name)

    def clear(self) -> None:
        self.spans.clear()
