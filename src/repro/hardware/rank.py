"""The rank: UPMEM's allocation and transfer granularity.

A rank bundles 8 PIM chips = 64 DPUs behind one control interface (CI).
All host interactions happen at rank granularity:

- ``write_mram`` / ``read_mram`` move data between host buffers and the
  MRAM banks of any subset of the rank's DPUs in one operation;
- ``launch`` boots a loaded program on a set of DPUs and runs it to
  completion (the hardware cannot pause/resume, Section 2);
- the CI carries command/status traffic and is the unit the paper's
  "CI operations" statistics count.

Hardware methods *return* simulated durations instead of advancing a clock
so that callers (native driver vs virtualized backend) can attribute the
time to the right place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import DPUS_PER_CHIP, MAX_XFER_BYTES, RankConfig
from repro.errors import (
    ControlInterfaceError,
    MemoryAccessError,
    RankOfflineError,
    TransferError,
)
from repro.hardware.chip import PimChip
from repro.hardware.clock import SimClock
from repro.hardware.dpu import Dpu, DpuRunStats, DpuState
from repro.hardware.timing import CostModel, DEFAULT_COST_MODEL
from repro.observability import MetricsRegistry
from repro.observability.instruments import RankInstruments
from repro.observability.spans import SpanRecorder


class RankHealth(enum.Enum):
    """Fault-model health of a rank.

    Real UPMEM ranks fail and slow down (the §3.5 motivation for
    host-wide rank arbitration); the manager tracks this per rank.
    ``OK`` ranks behave normally, ``DEGRADED`` ranks run slower by the
    rank's ``degradation`` factor, ``OFFLINE`` ranks refuse every
    guarded operation until repaired or replaced.
    """

    OK = "ok"
    DEGRADED = "degraded"
    OFFLINE = "offline"


class CiCommand(enum.Enum):
    """Control-interface command kinds tracked by the statistics (the
    traffic classes behind Fig. 12's CI bar)."""

    STATUS = "status"
    BOOT = "boot"
    LOAD = "load"
    RESET = "reset"
    CONFIG = "config"


@dataclass
class CiCounters:
    """Per-rank control-interface statistics (drives Fig. 12's "CI" bar)."""

    ops: Dict[str, int] = field(default_factory=dict)

    def record(self, command: CiCommand, count: int = 1) -> None:
        self.ops[command.value] = self.ops.get(command.value, 0) + count

    @property
    def total(self) -> int:
        return sum(self.ops.values())


class ControlInterface:
    """The command/status port of a rank (§2: one CI per rank)."""

    def __init__(self, rank: "Rank") -> None:
        self._rank = rank
        self.counters = CiCounters()

    def record(self, command: CiCommand, count: int = 1) -> None:
        """Account ``count`` CI operations in stats and live metrics."""
        self.counters.record(command, count)
        self._rank.obs.ci(command.value, count)

    def execute(self, command: CiCommand, count: int = 1) -> float:
        """Perform ``count`` CI operations; returns their native duration."""
        if count < 0:
            raise ControlInterfaceError(f"negative CI op count {count}")
        self._rank._guard("ci")
        self.record(command, count)
        duration = (count * self._rank.cost.ci_op_native
                    * self._rank.degradation)
        self._rank.spans.event("rank.ci", "rank", duration,
                               rank=self._rank.index,
                               command=command.value, count=count)
        return duration

    def status(self) -> List[DpuState]:
        """One STATUS op reading the run state of every DPU."""
        self.record(CiCommand.STATUS)
        return [dpu.state for dpu in self._rank.dpus]


@dataclass(frozen=True)
class WriteSpec:
    """One DPU's slice of a write-to-rank operation (§2's rank-granular
    host-to-MRAM transfer)."""

    dpu_index: int
    offset: int
    data: np.ndarray


@dataclass(frozen=True)
class ReadSpec:
    """One DPU's slice of a read-from-rank operation (§2's rank-granular
    MRAM-to-host transfer)."""

    dpu_index: int
    offset: int
    length: int


@dataclass
class PinnedMramWrite:
    """A pre-resolved write-to-rank: destination MRAM views paired with
    source views, ready to replay as plain slice copies.

    Compiled once per transfer shape by the plan cache
    (:mod:`repro.virt.plans`); :meth:`Rank.write_mram_pinned` replays it
    with accounting identical to :meth:`Rank.write_mram`.  ``valid()``
    guards against MRAM backing-store turnover (``fill(0)`` on reset or
    restore recycles extents, invalidating every pinned view).
    """

    rank: "Rank"
    #: ``(dst_mram_view, src_view)`` pairs, one per extent-bounded chunk.
    copies: List[Tuple[np.ndarray, np.ndarray]]
    #: ``(region, generation)`` snapshots for every MRAM touched.
    generations: List[Tuple[object, int]]
    total: int
    nr_targets: int

    def valid(self) -> bool:
        return all(region.generation == gen
                   for region, gen in self.generations)


class Rank:
    """One UPMEM rank: 64 DPUs across 8 chips behind one CI (§2, Fig. 1;
    the paper's allocation and transfer granularity)."""

    def __init__(self, config: RankConfig,
                 cost: CostModel = DEFAULT_COST_MODEL,
                 metrics: Optional[MetricsRegistry] = None,
                 spans: Optional[SpanRecorder] = None) -> None:
        self.config = config
        self.cost = cost
        self.index = config.index
        #: Live telemetry; shares the machine registry when the rank
        #: belongs to a :class:`~repro.hardware.machine.Machine`.
        self.obs = RankInstruments(metrics or MetricsRegistry(), config.index)
        #: Trace context; shares the machine recorder inside a
        #: :class:`~repro.hardware.machine.Machine`.  Span events no-op
        #: outside an active trace, so bare rank use stays untraced.
        self.spans = spans or SpanRecorder(SimClock())
        self.dpus: List[Dpu] = [
            Dpu(config.index, i) for i in range(config.functional_dpus)
        ]
        self.chips: List[PimChip] = [
            PimChip(config.index, c, self.dpus[c * DPUS_PER_CHIP:(c + 1) * DPUS_PER_CHIP])
            for c in range((len(self.dpus) + DPUS_PER_CHIP - 1) // DPUS_PER_CHIP)
        ]
        self.ci = ControlInterface(self)
        #: Fault-model state (see :class:`RankHealth`); ``degradation``
        #: scales every guarded operation's duration (1.0 = nominal).
        self.health = RankHealth.OK
        self.degradation = 1.0
        #: Fault-injection seam: when armed, called as ``hook(rank, op)``
        #: before every guarded operation.  ``None`` (the default) keeps
        #: the data path untouched, so a run without an injector is
        #: byte-identical to one on a build without ``repro.faults``.
        self.fault_hook = None
        # transfer statistics
        self.write_ops = 0
        self.read_ops = 0
        self.bytes_written = 0
        self.bytes_read = 0

    @property
    def nr_dpus(self) -> int:
        return len(self.dpus)

    def dpu(self, index: int) -> Dpu:
        try:
            return self.dpus[index]
        except IndexError:
            raise MemoryAccessError(
                f"rank {self.index} has {self.nr_dpus} DPUs, asked for {index}"
            ) from None

    def _guard(self, op: str) -> None:
        """Fault seam + health gate for host-visible rank operations.

        ``op`` is one of ``write``/``read``/``launch``/``ci``.  The hook
        may mutate state (bit flips, health changes) or raise; an
        OFFLINE rank then refuses the operation.  ``reset`` is
        deliberately unguarded so repair paths can always run.
        """
        if self.fault_hook is not None:
            try:
                self.fault_hook(self, op)
            except Exception:
                # Flag the active trace in-flight: faulted traces bypass
                # sampling, so the timeline of the failing request is
                # always retained.
                self.spans.mark_fault(f"rank_{op}_fault")
                raise
        if self.health is RankHealth.OFFLINE:
            self.spans.mark_fault("rank_offline")
            raise RankOfflineError(
                f"rank {self.index} is offline; cannot {op} — repair the "
                f"rank or allocate a replacement")

    # -- transfers ---------------------------------------------------------

    def _transfer_duration(self, total: int, nr_targets: int,
                           rust_interleave: bool) -> float:
        """Duration of one rank operation moving ``total`` bytes.

        A transfer covering a single DPU only drives one of the rank's
        8 chip lanes (byte interleaving spreads each word over the
        chips, but one DPU's MRAM sits behind one chip), so serial
        per-DPU copies — the SEL/UNI/SpMV/BFS retrieval pattern — run at
        roughly 1/8 of the rank bandwidth plus an extra per-copy setup.
        """
        bw = self.cost.rank_xfer_bandwidth
        extra = 0.0
        if nr_targets == 1:
            bw /= DPUS_PER_CHIP
            extra = self.cost.dpu_copy_fixed
        return (self.cost.rank_op_fixed + extra + total / bw
                + self.cost.interleave_time(total, rust=rust_interleave))

    def write_mram(self, specs: Sequence[WriteSpec],
                   rust_interleave: bool = False) -> float:
        """Write-to-rank: one rank operation covering ``specs``.

        Returns the simulated duration: fixed op cost + copy bandwidth +
        host-CPU interleaving work (C/AVX-512 unless ``rust_interleave``).
        """
        self._guard("write")
        total = 0
        for spec in specs:
            buf = spec.data
            if not (isinstance(buf, np.ndarray) and buf.dtype == np.uint8
                    and buf.ndim == 1 and buf.flags.c_contiguous):
                buf = np.ascontiguousarray(buf).view(np.uint8).reshape(-1)
            if buf.size > MAX_XFER_BYTES:
                raise TransferError(
                    f"transfer of {buf.size} bytes exceeds the 4 GB rank limit"
                )
            self.dpu(spec.dpu_index).mram.write(spec.offset, buf)
            total += buf.size
        if total > MAX_XFER_BYTES:
            raise TransferError(
                f"rank operation of {total} bytes exceeds the 4 GB limit"
            )
        self.write_ops += 1
        self.bytes_written += total
        duration = (self._transfer_duration(total, len(specs), rust_interleave)
                    * self.degradation)
        self.obs.xfer("write", total, duration)
        self.spans.event("rank.write", "rank", duration,
                         rank=self.index, bytes=total, targets=len(specs))
        return duration

    def pin_mram_write(self, specs: Sequence[WriteSpec]) -> PinnedMramWrite:
        """Resolve ``specs`` into a replayable :class:`PinnedMramWrite`.

        Materializes (and zeroes) the destination segments exactly as
        :meth:`write_mram` would, then returns paired destination/source
        views.  Raises :class:`MemoryAccessError`/:class:`TransferError`
        on anything unpinnable; callers fall back to the naive path.
        """
        total = 0
        copies: List[Tuple[np.ndarray, np.ndarray]] = []
        regions: Dict[int, object] = {}
        for spec in specs:
            src = spec.data
            if not (isinstance(src, np.ndarray) and src.dtype == np.uint8
                    and src.ndim == 1 and src.flags.c_contiguous):
                src = np.ascontiguousarray(src).view(np.uint8).reshape(-1)
            if src.size > MAX_XFER_BYTES:
                raise TransferError(
                    f"transfer of {src.size} bytes exceeds the 4 GB rank limit"
                )
            mram = self.dpu(spec.dpu_index).mram
            regions.setdefault(id(mram), mram)
            pos = 0
            for dst in mram.pin_chunks(spec.offset, src.size):
                copies.append((dst, src[pos:pos + dst.size]))
                pos += dst.size
            total += src.size
        if total > MAX_XFER_BYTES:
            raise TransferError(
                f"rank operation of {total} bytes exceeds the 4 GB limit"
            )
        generations = [(mram, mram.generation)
                       for mram in regions.values()]
        return PinnedMramWrite(rank=self, copies=copies,
                               generations=generations, total=total,
                               nr_targets=len(specs))

    def write_mram_pinned(self, pinned: PinnedMramWrite,
                          rust_interleave: bool = False) -> float:
        """Replay a :class:`PinnedMramWrite`: :meth:`write_mram` minus the
        per-spec resolution — identical accounting, duration, and
        observable side effects."""
        self._guard("write")
        for dst, src in pinned.copies:
            dst[...] = src
        total = pinned.total
        self.write_ops += 1
        self.bytes_written += total
        duration = (self._transfer_duration(total, pinned.nr_targets,
                                            rust_interleave)
                    * self.degradation)
        self.obs.xfer("write", total, duration)
        self.spans.event("rank.write", "rank", duration,
                         rank=self.index, bytes=total,
                         targets=pinned.nr_targets)
        return duration

    def read_mram(self, specs: Sequence[ReadSpec],
                  rust_interleave: bool = False,
                  into: Optional[List[np.ndarray]] = None,
                  ) -> Tuple[List[np.ndarray], float]:
        """Read-from-rank: returns per-spec buffers and the duration.

        ``into`` (optional) supplies one pre-sized uint8 buffer per spec;
        the reads then go through :meth:`MemoryRegion.read_into` with no
        allocation, which is how the backend runs pooled (zero-copy)
        reads.  The returned list is ``into`` itself in that case.
        """
        self._guard("read")
        if into is not None and len(into) != len(specs):
            raise TransferError(
                f"into has {len(into)} buffers for {len(specs)} read specs"
            )
        out: List[np.ndarray] = []
        total = 0
        for i, spec in enumerate(specs):
            if spec.length > MAX_XFER_BYTES:
                raise TransferError(
                    f"transfer of {spec.length} bytes exceeds the 4 GB rank limit"
                )
            mram = self.dpu(spec.dpu_index).mram
            if into is None:
                out.append(mram.read(spec.offset, spec.length))
            else:
                buf = into[i]
                if buf.size != spec.length:
                    raise TransferError(
                        f"into[{i}] holds {buf.size} bytes, spec reads "
                        f"{spec.length}"
                    )
                mram.read_into(spec.offset, buf)
            total += spec.length
        if into is not None:
            out = list(into)
        self.read_ops += 1
        self.bytes_read += total
        duration = (self._transfer_duration(total, len(specs), rust_interleave)
                    * self.degradation)
        self.obs.xfer("read", total, duration)
        self.spans.event("rank.read", "rank", duration,
                         rank=self.index, bytes=total, targets=len(specs))
        return out, duration

    # -- execution -----------------------------------------------------------

    def launch(self, dpu_indices: Iterable[int],
               runner: Callable[[Dpu], DpuRunStats]) -> float:
        """Boot and run the loaded program on ``dpu_indices``.

        ``runner`` executes the program functionally on one DPU and returns
        its :class:`DpuRunStats`; the rank converts stats to time.  All DPUs
        run in parallel, so rank duration is the slowest DPU's duration.
        The launch also performs the mandatory CI boot sequence.
        """
        self._guard("launch")
        indices = list(dpu_indices)
        self.ci.record(CiCommand.BOOT, len(indices))
        slowest = 0.0
        for idx in indices:
            dpu = self.dpu(idx)
            dpu.begin_run()
            try:
                stats = runner(dpu)
            except Exception:
                # A crashed kernel leaves the DPU in the FAULT state the
                # CI reports; it must not stay RUNNING forever.
                dpu.fault()
                self.obs.dpu_fault()
                raise
            dpu.finish_run(stats)
            duration = (self.cost.pipeline_time(stats.tasklet_instructions)
                        + self.cost.dma_time(stats.dma_ops, stats.dma_bytes))
            slowest = max(slowest, duration)
        slowest *= self.degradation
        self.obs.launch(len(indices), slowest)
        self.spans.event("rank.launch", "rank", slowest,
                         rank=self.index, dpus=len(indices))
        return slowest

    # -- lifecycle ---------------------------------------------------------------

    def reset(self) -> float:
        """Erase every DPU's memories and state; returns the reset duration.

        This is what the manager triggers after a VM releases the rank to
        prevent cross-tenant information leaks (Section 3.5).
        """
        for dpu in self.dpus:
            dpu.reset()
        self.ci.record(CiCommand.RESET)
        self.obs.reset()
        return self.cost.manager_reset

    def is_clean(self) -> bool:
        """True when all MRAM banks read back as zero (isolation check)."""
        return all(dpu.mram.is_zero() for dpu in self.dpus)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rank({self.index}, {self.nr_dpus} DPUs)"
