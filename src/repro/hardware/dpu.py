"""The DRAM Processing Unit (DPU) model.

A DPU (Section 2) owns:

- a 64 MB MRAM bank, reachable from the host and via DMA from the DPU;
- 64 KB of WRAM, the only memory the pipeline can compute on;
- 24 KB of IRAM holding the loaded program;
- up to 24 hardware tasklets sharing the in-order pipeline.

The hardware layer is purely functional + stateful: *executing* a program
is the job of the SDK runtime (``repro.sdk.runtime``), which hands the
rank a runner callable.  The DPU records run statistics so the timing
model can convert them to simulated durations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import IRAM_SIZE, MRAM_SIZE, WRAM_SIZE
from repro.errors import DpuFaultError, ProgramLoadError
from repro.hardware.memory import MemoryRegion


class DpuState(enum.Enum):
    """Run state reported through the control interface (§2, Fig. 12's
    CI status traffic polls exactly these values)."""

    IDLE = "idle"
    RUNNING = "running"
    DONE = "done"
    FAULT = "fault"


@dataclass
class DpuRunStats:
    """Statistics of one program run on one DPU (inputs of §2's
    pipeline/DMA timing rules).

    ``tasklet_instructions`` holds the number of pipeline instructions each
    tasklet issued; DMA transfers between MRAM and WRAM are counted
    separately because they stall the DMA engine, not the pipeline.
    """

    tasklet_instructions: List[int] = field(default_factory=list)
    dma_ops: int = 0
    dma_bytes: int = 0

    @property
    def total_instructions(self) -> int:
        return sum(self.tasklet_instructions)


class Dpu:
    """One DRAM Processing Unit (§2: 64 MB MRAM, 64 KB WRAM, 24 KB IRAM,
    up to 24 tasklets on an in-order pipeline — Fig. 1's compute unit)."""

    def __init__(self, rank_index: int, dpu_index: int) -> None:
        self.rank_index = rank_index
        self.dpu_index = dpu_index
        self.mram = MemoryRegion(MRAM_SIZE, name=f"mram[r{rank_index}.d{dpu_index}]")
        self.wram = MemoryRegion(WRAM_SIZE, name=f"wram[r{rank_index}.d{dpu_index}]")
        self.iram = MemoryRegion(IRAM_SIZE, name=f"iram[r{rank_index}.d{dpu_index}]")
        self.state = DpuState.IDLE
        #: Program object currently loaded (an ``repro.sdk.kernel.DpuProgram``).
        self.program: Optional[object] = None
        #: Host-visible symbol storage (WRAM variables declared ``__host``).
        self.symbols: Dict[str, bytearray] = {}
        self.last_run: Optional[DpuRunStats] = None
        #: Lifetime run statistics (feed the per-rank launch/boot metrics).
        self.boots = 0
        self.faults = 0
        #: Kernel-store dirty log, armed by the backend around a launch
        #: when the transfer cache is on: ``(space, offset, nbytes)`` per
        #: store, where ``space`` is the MRAM heap symbol or a WRAM
        #: symbol name — the same keying as the digest index.  ``None``
        #: (the default) disables logging entirely.
        self.dirty_log: Optional[List[tuple]] = None

    # -- program load -------------------------------------------------------

    def load_program(self, program: object, binary_size: int,
                     symbols: Dict[str, int]) -> None:
        """Load ``program`` whose code occupies ``binary_size`` IRAM bytes.

        ``symbols`` maps host-visible symbol names to their byte sizes.
        """
        if binary_size > IRAM_SIZE:
            raise ProgramLoadError(
                f"program of {binary_size} bytes exceeds IRAM ({IRAM_SIZE})"
            )
        if self.state is DpuState.RUNNING:
            raise ProgramLoadError("cannot load a program on a running DPU")
        # The token written to IRAM stands in for the binary image.
        self.iram.fill(0)
        self.iram.write(0, bytes(min(binary_size, 64)))
        self.program = program
        self.symbols = {name: bytearray(size) for name, size in symbols.items()}
        self.state = DpuState.IDLE

    # -- symbol access (host side) -------------------------------------------

    def write_symbol(self, name: str, offset: int, data: bytes) -> None:
        if name not in self.symbols:
            raise DpuFaultError(
                f"DPU r{self.rank_index}.d{self.dpu_index}: unknown symbol {name!r}"
            )
        buf = self.symbols[name]
        if offset + len(data) > len(buf):
            raise DpuFaultError(
                f"symbol {name!r}: write of {len(data)} bytes at {offset} "
                f"overflows its {len(buf)} bytes"
            )
        buf[offset:offset + len(data)] = data

    def read_symbol(self, name: str, offset: int, length: int) -> bytes:
        if name not in self.symbols:
            raise DpuFaultError(
                f"DPU r{self.rank_index}.d{self.dpu_index}: unknown symbol {name!r}"
            )
        buf = self.symbols[name]
        if offset + length > len(buf):
            raise DpuFaultError(
                f"symbol {name!r}: read of {length} bytes at {offset} "
                f"overflows its {len(buf)} bytes"
            )
        return bytes(buf[offset:offset + length])

    # -- run-state transitions -------------------------------------------------

    def begin_run(self) -> None:
        if self.program is None:
            raise DpuFaultError("launch without a loaded program")
        if self.state is DpuState.RUNNING:
            raise DpuFaultError("DPU is already running")
        self.boots += 1
        self.state = DpuState.RUNNING

    def finish_run(self, stats: DpuRunStats) -> None:
        self.last_run = stats
        self.state = DpuState.DONE

    def fault(self) -> None:
        self.faults += 1
        self.state = DpuState.FAULT

    def reset(self) -> None:
        """Hardware reset: clear memories, program and state."""
        self.mram.fill(0)
        self.wram.fill(0)
        self.iram.fill(0)
        self.program = None
        self.symbols = {}
        self.last_run = None
        self.state = DpuState.IDLE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Dpu(r{self.rank_index}.d{self.dpu_index}, "
                f"state={self.state.value})")
