"""UPMEM hardware functional + timing simulator.

This subpackage models the machine in Fig. 1 of the paper: host CPU and
DRAM plus UPMEM DIMMs, each DIMM holding 2 ranks of 8 PIM chips with
8 DPUs per chip.  Every DPU owns a 64 MB MRAM bank, 64 KB WRAM and
24 KB IRAM and executes up to 24 tasklets.

The simulator is *functional* (data operations really happen, on numpy
buffers) and *timed* (every action advances a :class:`~repro.hardware.clock.
SimClock` according to the :class:`~repro.hardware.timing.CostModel`).
"""

from repro.hardware.clock import SimClock
from repro.hardware.memory import MemoryRegion
from repro.hardware.timing import CostModel
from repro.hardware.dpu import Dpu, DpuState
from repro.hardware.chip import PimChip
from repro.hardware.rank import Rank, ControlInterface
from repro.hardware.dimm import Dimm
from repro.hardware.machine import Machine

__all__ = [
    "SimClock",
    "MemoryRegion",
    "CostModel",
    "Dpu",
    "DpuState",
    "PimChip",
    "Rank",
    "ControlInterface",
    "Dimm",
    "Machine",
]
