"""Command-line interface: run applications and regenerate experiments.

Usage::

    python -m repro list                          # Table 1 inventory
    python -m repro run VA --dpus 60 --mode vpim  # one application
    python -m repro compare NW --dpus 16          # native vs vPIM
    python -m repro figure fig9                   # regenerate a figure
    python -m repro metrics VA --dpus 60          # Prometheus snapshot
    python -m repro metrics --diff old.json new.json  # snapshot delta
    python -m repro trace NW --dpus 16            # span tree + critical path
    python -m repro cluster --policy best_fit     # fleet scenario replay
    python -m repro monitor --quick --out dash.html   # telemetry pipeline
    python -m repro spec                          # the virtio-pim spec
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import figures
from repro.analysis.report import format_table
from repro.apps.registry import ALL_APPS
from repro.virt.opts import PRESETS

FIGURES = {
    "fig8": lambda args: _print_fig8(args),
    "fig9": lambda args: _print_fig9(args),
    "fig10": lambda args: _print_fig10(args),
    "fig11": lambda args: _print_fig11(args),
    "fig14": lambda args: _print_fig14(args),
    "fig15": lambda args: _print_fig15(args),
    "fig16": lambda args: _print_fig16(args),
}


def _print_fig8(args) -> None:
    runs = figures.fig8_prim_applications(
        profile=args.profile, dpu_counts=tuple(args.dpu_counts))
    rows = [(r.app, r.nr_dpus, f"{r.native.segments_total * 1e3:.1f}",
             f"{r.vpim.segments_total * 1e3:.1f}", f"{r.overhead:.2f}x")
            for r in runs]
    print(format_table(["App", "DPUs", "native ms", "vPIM ms", "overhead"],
                       rows, title="Fig. 8"))


def _print_fig9(args) -> None:
    sweeps = figures.fig9_checksum_sensitivity(scale=args.scale)
    for name in ("vcpus", "dpus", "size"):
        rows = [(p.x, f"{p.native_s:.4f}", f"{p.vpim_s:.4f}",
                 f"{p.overhead:.2f}x") for p in sweeps[name]]
        print(format_table([name, "native s", "vPIM s", "overhead"], rows,
                           title=f"Fig. 9 ({name})"))
        print()


def _print_fig10(args) -> None:
    points = figures.fig10_index_search()
    rows = [(p.x, f"{p.native_s * 1e3:.1f}", f"{p.vpim_s * 1e3:.1f}",
             f"{p.overhead:.2f}x") for p in points]
    print(format_table(["#DPUs", "native ms", "vPIM ms", "overhead"], rows,
                       title="Fig. 10"))


def _print_fig11(args) -> None:
    sweeps = figures.fig11_c_enhancement(scale=args.scale)
    for name, series in sweeps.items():
        rows = [(p.x, f"{p.native_s:.4f}",
                 f"{p.variants['vPIM-rust'] / p.native_s:.2f}x",
                 f"{p.variants['vPIM-C'] / p.native_s:.2f}x")
                for p in series]
        print(format_table([name, "native s", "rust ovh", "C ovh"], rows,
                           title=f"Fig. 11 ({name})"))
        print()


def _print_fig14(args) -> None:
    rows_data = figures.fig14_nw_ablation(profile=args.profile)
    rows = [(r.mode, f"{r.total_s * 1e3:.1f}", r.messages, r.batched,
             r.cache_hits) for r in rows_data]
    print(format_table(["mode", "total ms", "messages", "batched", "hits"],
                       rows, title="Fig. 14"))


def _print_fig15(args) -> None:
    points = figures.fig15_parallel_ranks()
    rows = [(p.nr_ranks, f"{p.app_speedup:.2f}x", f"{p.write_speedup:.2f}x")
            for p in points]
    print(format_table(["ranks", "app speedup", "write speedup"], rows,
                       title="Fig. 15"))


def _print_fig16(args) -> None:
    out = figures.fig16_request_times()
    rows = [(i, f"{seq[1]:.4f}", f"{par[1]:.4f}")
            for i, (seq, par) in enumerate(zip(out["vPIM-Seq"], out["vPIM"]))]
    print(format_table(["rank", "sequential s", "parallel s"], rows,
                       title="Fig. 16"))


def cmd_list(args) -> int:
    rows = [(info.domain, info.benchmark, info.short_name)
            for info in ALL_APPS]
    print(format_table(["Domain", "Benchmark", "Short name"], rows,
                       title="Applications (Table 1 + microbenchmarks)"))
    return 0


def cmd_run(args) -> int:
    mode = "native" if args.mode == "native" else "vm"
    report = figures.run_app(args.app, args.dpus, mode=mode,
                             profile=args.profile, preset=args.preset)
    print(report.row())
    print(f"segments: " + ", ".join(
        f"{k}={v * 1e3:.2f}ms" for k, v in report.segments.items()))
    if report.vmexits:
        print(f"guest<->VMM transitions: {report.vmexits}")
    return 0 if report.verified else 1


def cmd_compare(args) -> int:
    run = figures.compare_app(args.app, args.dpus, profile=args.profile,
                              preset=args.preset)
    print(run.native.row())
    print(run.vpim.row())
    print(f"overhead: {run.overhead:.2f}x")
    return 0 if (run.native.verified and run.vpim.verified) else 1


def cmd_figure(args) -> int:
    FIGURES[args.name](args)
    return 0


def cmd_metrics(args) -> int:
    """Run one application and print/save the metrics snapshot."""
    from repro.observability import render_json, render_prometheus

    if args.diff:
        return _metrics_diff(args.diff[0], args.diff[1])
    if args.app is None:
        print("error: an application is required unless --diff is given",
              file=sys.stderr)
        return 2
    mode = "native" if args.mode == "native" else "vm"
    report, registry, tracer = figures.run_app_instrumented(
        args.app, args.dpus, mode=mode, profile=args.profile,
        preset=args.preset)
    text = (render_json(registry) if args.format == "json"
            else render_prometheus(registry))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"metrics snapshot written to {args.output}")
    else:
        print(text, end="")
    if args.trace:
        tracer.save(args.trace)
        print(f"chrome trace ({len(tracer.events)} events) "
              f"written to {args.trace}", file=sys.stderr)
    return 0 if report.verified else 1


def _metrics_diff(old_path: str, new_path: str) -> int:
    """Print the per-family delta between two JSON metric snapshots."""
    from repro.errors import ObservabilityError
    from repro.observability.snapshots import (
        diff_snapshots, format_deltas, load_snapshot,
    )

    try:
        old = load_snapshot(old_path)
        new = load_snapshot(new_path)
    except (OSError, ValueError, ObservabilityError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    deltas = diff_snapshots(old, new)
    print(format_deltas(deltas))
    return 0


def cmd_monitor(args) -> int:
    """Run a scenario under the telemetry pipeline; render the dashboard."""
    import json

    from repro.analysis.monitor import MonitorConfig, run_monitor
    from repro.analysis.report import format_table
    from repro.observability.dashboard import render_dashboard

    scenario = "quick" if args.quick else args.scenario
    result = run_monitor(MonitorConfig(scenario=scenario, seed=args.seed,
                                       interval=args.interval))
    data = result.to_dict()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(render_dashboard(data))
        print(f"dashboard written to {args.out}", file=sys.stderr)
    if args.format == "json":
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        rows = []
        for telemetry in data["scenarios"]:
            firing = [r["name"] for r in telemetry["alerts"]["rules"]
                      if r["state"] == "firing"]
            rows.append((
                telemetry["name"], telemetry["scrapes"],
                telemetry["series"], telemetry["dropped"],
                f"{telemetry['makespan_s']:.4f}",
                ",".join(f"{k}={v}" for k, v in sorted(
                    telemetry["retention_counts"].items())) or "-",
                ",".join(firing) or "-",
            ))
        print(format_table(
            ["scenario", "scrapes", "series", "dropped", "makespan s",
             "retention", "firing"],
            rows, title=f"repro monitor ({scenario}, seed {args.seed})"))
        if data["exemplar_families"]:
            print("exemplars: " + "  ".join(
                f"{name}={count}" for name, count in sorted(
                    data["exemplar_families"].items())))
        if data.get("tail_demo"):
            demo = data["tail_demo"]
            print(f"tail demo: slowest decile kept by tail arm: "
                  f"{demo['slowest_kept_by_tail']}; dropped by head arm: "
                  f"{demo['slowest_dropped_by_head']}")
        if data.get("drill"):
            drill = data["drill"]
            print(f"fault drill: pending={drill['visited_pending']} "
                  f"firing={drill['visited_firing']} "
                  f"resolved={drill['visited_resolved']}")
        print(f"digest: {result.digest()}")
    if result.dropped_points > 0:
        print(f"error: the store dropped {result.dropped_points} points — "
              "raise the scrape interval or max_points", file=sys.stderr)
        return 1
    return 0


def cmd_trace(args) -> int:
    """Run one application under tracing; print its latency anatomy."""
    from repro.observability import (critical_path, layer_self_times,
                                     render_prometheus, slowest_spans)

    mode = "native" if args.mode == "native" else "vm"
    report, registry, recorder = figures.run_app_traced(
        args.app, args.dpus, mode=mode, profile=args.profile,
        preset=args.preset, sample_rate=args.sample_rate)
    if args.output:
        recorder.save(args.output)
        print(f"perfetto trace written to {args.output}", file=sys.stderr)
    if args.logs:
        recorder.log.save(args.logs)
        print(f"trace-correlated logs written to {args.logs}",
              file=sys.stderr)
    if args.metrics_output:
        with open(args.metrics_output, "w") as handle:
            handle.write(render_prometheus(registry))
        print(f"metrics snapshot written to {args.metrics_output}",
              file=sys.stderr)
    trace = recorder.latest()
    if trace is None:
        print(f"no trace retained (sample_rate={args.sample_rate}); "
              f"{recorder.spans_started} spans started, "
              f"{recorder.traces_finished} traces finished")
        return 0 if report.verified else 1
    root = trace.root
    print(f"trace {trace.trace_id}: {len(trace)} spans, root {root.name} "
          f"({root.duration * 1e3:.3f} ms simulated)")
    self_times = layer_self_times(trace)
    rows = [(layer, f"{seconds * 1e3:.3f}",
             f"{seconds / root.duration * 100:.1f}%")
            for layer, seconds in sorted(self_times.items(),
                                         key=lambda kv: -kv[1])]
    print(format_table(["layer", "self ms", "share"], rows,
                       title="Per-layer self time"))
    chain = critical_path(trace)
    print("critical path: " + " > ".join(
        f"{span.name} ({span.duration * 1e3:.3f}ms)" for span in chain))
    slow = slowest_spans(trace, name="frontend.request", top=args.top)
    if slow:
        rows = [(span.span_id, span.attributes.get("kind", "?"),
                 f"{span.start * 1e3:.3f}", f"{span.duration * 1e3:.3f}")
                for span in slow]
        print(format_table(["span", "kind", "start ms", "dur ms"], rows,
                           title=f"Slowest {len(slow)} requests"))
    return 0 if report.verified else 1


def cmd_cluster(args) -> int:
    """Replay a fleet scenario: admission, placement, consolidation."""
    from repro.analysis.fleet import SUMMARY_HEADERS, summarize, summary_rows
    from repro.cluster import PLACEMENT_POLICIES, ClusterConfig, ScenarioConfig
    from repro.cluster.loadgen import run_scenario
    from repro.observability import render_json, render_prometheus

    if args.list_policies:
        for name in sorted(PLACEMENT_POLICIES):
            doc = (PLACEMENT_POLICIES[name].__doc__ or "").split("\n")[0]
            print(f"{name:<14} {doc}")
        return 0

    config = ScenarioConfig(
        cluster=ClusterConfig(nr_hosts=args.hosts,
                              ranks_per_host=args.ranks_per_host,
                              dpus_per_rank=args.dpus_per_rank),
        policy=args.policy,
        nr_tenants=args.tenants,
        nr_requests=args.requests,
        arrival_rate=args.arrival_rate,
        mean_hold_s=args.hold,
        queue_limit=args.queue_limit,
        tenant_quota_ranks=args.quota,
        run_apps=not args.no_apps,
        consolidate_every_s=args.consolidate_every,
        seed=args.seed,
    )
    result, cluster = run_scenario(config)
    summary = summarize(result, cluster)
    print(format_table(SUMMARY_HEADERS, summary_rows({args.policy: summary}),
                       title=f"Fleet scenario ({args.hosts} hosts, "
                             f"{args.tenants} tenants, seed={args.seed})"))
    if result.rejections:
        print("rejections: " + ", ".join(
            f"{k}={v}" for k, v in sorted(result.rejections.items())))
    verified = [r.verified for r in result.records if r.verified is not None]
    if verified:
        print(f"app runs verified: {sum(verified)}/{len(verified)}")
    if args.metrics_output:
        text = (render_json(cluster.metrics) if args.format == "json"
                else render_prometheus(cluster.metrics))
        with open(args.metrics_output, "w") as handle:
            handle.write(text)
        print(f"cluster metrics snapshot written to {args.metrics_output}")
    return 0 if all(verified) else 1


def cmd_chaos(args) -> int:
    """Run sessions (or a fleet) under a seeded fault plan."""
    from repro.analysis.chaos import (
        CHAOS_HEADERS,
        CLUSTER_CHAOS_HEADERS,
        ChaosConfig,
        chaos_rows,
        cluster_chaos_rows,
        run_chaos,
        run_cluster_chaos,
    )
    from repro.faults import FaultKind, FaultPlan

    if args.fleet:
        from repro.cluster import ClusterConfig, ScenarioConfig
        scenario = ScenarioConfig(
            cluster=ClusterConfig(nr_hosts=args.hosts,
                                  ranks_per_host=args.ranks,
                                  dpus_per_rank=args.dpus_per_rank),
            nr_requests=args.sessions * 4, seed=args.seed)
        plan = FaultPlan.generate(
            seed=args.seed, horizon_s=args.horizon,
            rate_per_s=args.rate, kinds=(FaultKind.HOST_CRASH,),
            limits={FaultKind.HOST_CRASH: max(args.hosts - 1, 0)})
        fleet = run_cluster_chaos(scenario, plan)
        print(format_table(
            CLUSTER_CHAOS_HEADERS, cluster_chaos_rows(fleet),
            title=f"Fleet chaos ({args.hosts} hosts, seed={args.seed})"))
        print(f"timeline digest: {fleet.timeline_digest}")
        if fleet.timeline:
            print(fleet.timeline)
        snapshot, lost = fleet.metric_snapshot, fleet.sessions_lost
    else:
        config = ChaosConfig(
            nr_ranks=args.ranks, dpus_per_rank=args.dpus_per_rank,
            app=args.app, nr_sessions=args.sessions, seed=args.seed,
            fault_rate_per_s=args.rate, horizon_s=args.horizon,
            max_attempts=args.max_attempts)
        result = run_chaos(config)
        print(format_table(
            CHAOS_HEADERS, chaos_rows(result),
            title=f"Chaos run ({args.app} x{args.sessions}, "
                  f"seed={args.seed})"))
        print(f"timeline digest: {result.timeline_digest}")
        if result.timeline:
            print(result.timeline)
        snapshot, lost = result.metric_snapshot, result.sessions_lost
    if args.metrics_output:
        import json
        with open(args.metrics_output, "w") as handle:
            json.dump(snapshot, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"fault metrics snapshot written to {args.metrics_output}")
    return 0 if lost == 0 else 1


def cmd_bench(args) -> int:
    """Run a benchmark harness from the ``benchmarks/`` directory.

    ``--cache`` selects the transfer-cache ablation (NW/BFS/MLP off/on,
    ``docs/transfer_cache.md``); the default is the wall-clock harness.
    """
    import runpy
    from pathlib import Path

    script = ("bench_transfer_cache.py" if args.cache
              else "bench_wallclock.py")
    path = Path(__file__).resolve().parents[2] / "benchmarks" / script
    if not path.exists():
        print(f"benchmark harness not found at {path}", file=sys.stderr)
        return 2
    argv = []
    if args.profile in ("test", "cprofile"):
        argv.append("--quick")
    if args.profile == "cprofile":
        if args.cache:
            print("--profile (cProfile mode) only applies to the "
                  "wall-clock harness, not --cache", file=sys.stderr)
            return 2
        argv.append("--profile")
    if args.check:
        argv.append("--check")
    module = runpy.run_path(str(path))
    return int(module["main"](argv))


def cmd_qos(args) -> int:
    """Noisy-neighbor isolation demo (``docs/qos.md``).

    Runs the same victim/noisy schedule with QoS off (FIFO event loop)
    and on (weighted-fair queueing), prints the victim latency
    scorecard, then — unless ``--no-slo`` — walks through one SLO
    enforcement actuation.
    """
    from repro.analysis.qos import (
        isolation_table,
        run_isolation,
        run_slo_demo,
        slo_demo_report,
    )

    result = run_isolation(sessions=args.sessions,
                           dpus_per_rank=args.dpus_per_rank)
    print(isolation_table(result))
    if not args.no_slo:
        print()
        print("SLO enforcement walkthrough")
        print(slo_demo_report(run_slo_demo(
            sessions=max(2, args.sessions // 2),
            dpus_per_rank=args.dpus_per_rank)))
    return 0


def cmd_overcommit(args) -> int:
    """Rank-overcommit demo (``docs/paging.md``).

    Runs the same interleaved tenant schedule under four arms — a
    reference host with enough physical ranks, hard denial, emulation
    fallback, and demand paging — and prints the goodput/latency/
    bit-identity scorecard plus the paging arm's swap accounting.
    """
    from repro.analysis.overcommit import overcommit_table, run_overcommit

    result = run_overcommit(tenants=args.tenants,
                            physical_ranks=args.ranks,
                            dpus_per_rank=args.dpus_per_rank,
                            rounds=args.rounds,
                            overcommit_ratio=args.ratio)
    print(overcommit_table(result))
    paging = result.arms["paging"]
    print()
    print(f"paging arm swap accounting: "
          f"{paging.demand_faults} demand + "
          f"{paging.predictive_faults} predictive faults, "
          f"{paging.evictions} evictions, "
          f"{paging.swap_bytes >> 10} KiB moved")
    return 0


def cmd_spec(args) -> int:
    from repro.virt.virtio import VirtioPimConfigSpace
    from repro.config import MAX_SERIALIZED_BUFFERS, TRANSFERQ_SLOTS
    space = VirtioPimConfigSpace()
    print("virtio-pim device specification (paper Appendix A.1)")
    print(f"  device ID        : {space.device_id}")
    print(f"  queues           : transferq ({TRANSFERQ_SLOTS} slots), controlq")
    print(f"  max chain        : {MAX_SERIALIZED_BUFFERS} buffers "
          "(request info + matrix meta + 64 x (DPU meta + pages))")
    print("  feature bits     : none")
    print("  config layout    :")
    for key, value in space.as_fields().items():
        if key != "device_id":
            print(f"    {key:<22} {value}")
    print("  operations       : GET_CONFIG, LOAD, WRITE_RANK, READ_RANK, "
          "LAUNCH, CI_OP, RELEASE")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="vPIM reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the applications").set_defaults(
        fn=cmd_list)

    run = sub.add_parser("run", help="run one application")
    run.add_argument("app", choices=[i.short_name for i in ALL_APPS])
    run.add_argument("--dpus", type=int, default=16)
    run.add_argument("--mode", choices=["native", "vpim"], default="vpim")
    run.add_argument("--preset", choices=sorted(PRESETS), default=None)
    run.add_argument("--profile", choices=["test", "bench"], default="test")
    run.set_defaults(fn=cmd_run)

    cmp_ = sub.add_parser("compare", help="native vs vPIM on one app")
    cmp_.add_argument("app", choices=[i.short_name for i in ALL_APPS])
    cmp_.add_argument("--dpus", type=int, default=16)
    cmp_.add_argument("--preset", choices=sorted(PRESETS), default=None)
    cmp_.add_argument("--profile", choices=["test", "bench"], default="test")
    cmp_.set_defaults(fn=cmd_compare)

    fig = sub.add_parser("figure", help="regenerate one evaluation figure")
    fig.add_argument("name", choices=sorted(FIGURES))
    fig.add_argument("--scale", type=int, default=32)
    fig.add_argument("--profile", choices=["test", "bench"], default="test")
    fig.add_argument("--dpu-counts", type=int, nargs="+", default=[60, 480])
    fig.set_defaults(fn=cmd_figure)

    met = sub.add_parser(
        "metrics",
        help="run one application and emit a metrics snapshot")
    met.add_argument("app", nargs="?", default=None,
                     choices=[i.short_name for i in ALL_APPS])
    met.add_argument("--diff", nargs=2, default=None,
                     metavar=("OLD", "NEW"),
                     help="diff two JSON snapshots instead of running: "
                          "counters as rates, gauges as last value")
    met.add_argument("--dpus", type=int, default=16)
    met.add_argument("--mode", choices=["native", "vpim"], default="vpim")
    met.add_argument("--preset", choices=sorted(PRESETS), default=None)
    met.add_argument("--profile", choices=["test", "bench"], default="test")
    met.add_argument("--format", choices=["prom", "json"], default="prom")
    met.add_argument("--output", default=None, metavar="FILE",
                     help="write the snapshot here instead of stdout")
    met.add_argument("--trace", default=None, metavar="FILE",
                     help="also save the Chrome trace of the run")
    met.set_defaults(fn=cmd_metrics)

    tra = sub.add_parser(
        "trace",
        help="run one application under request-scoped tracing")
    tra.add_argument("app", choices=[i.short_name for i in ALL_APPS])
    tra.add_argument("--dpus", type=int, default=16)
    tra.add_argument("--mode", choices=["native", "vpim"], default="vpim")
    tra.add_argument("--preset", choices=sorted(PRESETS), default=None)
    tra.add_argument("--profile", choices=["test", "bench"], default="test")
    tra.add_argument("--sample-rate", type=float, default=1.0,
                     help="head-sampling rate in [0, 1] (faulted traces "
                          "are always kept)")
    tra.add_argument("--top", type=int, default=5,
                     help="how many slowest requests to show")
    tra.add_argument("--output", default=None, metavar="FILE",
                     help="write the Perfetto/Chrome trace JSON here")
    tra.add_argument("--logs", default=None, metavar="FILE",
                     help="write the trace-correlated JSONL log here")
    tra.add_argument("--metrics-output", default=None, metavar="FILE",
                     help="also write a Prometheus metrics snapshot")
    tra.set_defaults(fn=cmd_trace)

    clu = sub.add_parser(
        "cluster",
        help="replay a multi-host fleet scenario (placement + admission)")
    clu.add_argument("--list-policies", action="store_true",
                     help="list the placement policies and exit")
    clu.add_argument("--policy", default="round_robin",
                     choices=["round_robin", "best_fit", "least_loaded"])
    clu.add_argument("--hosts", type=int, default=4)
    clu.add_argument("--ranks-per-host", type=int, default=4)
    clu.add_argument("--dpus-per-rank", type=int, default=8)
    clu.add_argument("--tenants", type=int, default=8)
    clu.add_argument("--requests", type=int, default=24)
    clu.add_argument("--arrival-rate", type=float, default=2.0,
                     help="Poisson arrival rate (requests per simulated s)")
    clu.add_argument("--hold", type=float, default=2.0,
                     help="mean tenant residency after the app run (s)")
    clu.add_argument("--queue-limit", type=int, default=16)
    clu.add_argument("--quota", type=int, default=None, metavar="RANKS",
                     help="per-tenant committed-rank quota")
    clu.add_argument("--consolidate-every", type=float, default=1.0,
                     metavar="S", help="consolidation period (0 disables)")
    clu.add_argument("--no-apps", action="store_true",
                     help="skip PrIM app runs (pure control-plane replay)")
    clu.add_argument("--seed", type=int, default=0,
                     help="workload seed; same seed replays the same "
                          "scenario and metrics snapshot")
    clu.add_argument("--format", choices=["prom", "json"], default="prom")
    clu.add_argument("--metrics-output", default=None, metavar="FILE",
                     help="write the cluster metrics snapshot here")
    clu.set_defaults(fn=cmd_cluster)

    cha = sub.add_parser(
        "chaos",
        help="run sessions under a seeded fault plan (repro.faults)")
    cha.add_argument("--fleet", action="store_true",
                     help="fleet mode: host crashes + tenant re-placement")
    cha.add_argument("--app", choices=["VA", "RED", "SEL", "BS"],
                     default="VA")
    cha.add_argument("--sessions", type=int, default=4)
    cha.add_argument("--ranks", type=int, default=3,
                     help="ranks per machine (or per host with --fleet)")
    cha.add_argument("--hosts", type=int, default=3,
                     help="fleet size (only with --fleet)")
    cha.add_argument("--dpus-per-rank", type=int, default=8)
    cha.add_argument("--rate", type=float, default=1.0,
                     help="expected fault events per simulated second")
    cha.add_argument("--horizon", type=float, default=10.0,
                     help="fault plan horizon (simulated seconds)")
    cha.add_argument("--max-attempts", type=int, default=4,
                     help="session rerun budget")
    cha.add_argument("--seed", type=int, default=0,
                     help="plan + workload seed; same seed replays the "
                          "identical fault timeline")
    cha.add_argument("--metrics-output", default=None, metavar="FILE",
                     help="write the repro_fault_* snapshot here (JSON)")
    cha.set_defaults(fn=cmd_chaos)

    ben = sub.add_parser(
        "bench",
        help="run a perf harness (wall-clock, or --cache for the "
             "transfer-cache ablation)")
    ben.add_argument("--cache", action="store_true",
                     help="run the content-aware transfer-cache ablation")
    ben.add_argument("--check", action="store_true",
                     help="fail on regression/divergence vs the committed "
                          "artifact")
    ben.add_argument("--profile", nargs="?", const="cprofile",
                     choices=["test", "bench", "cprofile"], default="test",
                     help="test = --quick sizing; bench = full; bare "
                          "--profile = cProfile the suite (quick sizing) "
                          "and print the top-20 cumulative hot functions")
    ben.set_defaults(fn=cmd_bench)

    qos = sub.add_parser(
        "qos", help="noisy-neighbor isolation demo (docs/qos.md)")
    qos.add_argument("--sessions", type=int, default=8,
                     help="victim/noisy session pairs per arm")
    qos.add_argument("--dpus-per-rank", type=int, default=60)
    qos.add_argument("--no-slo", action="store_true",
                     help="skip the SLO enforcement walkthrough")
    qos.set_defaults(fn=cmd_qos)

    over = sub.add_parser(
        "overcommit", help="rank-overcommit demo (docs/paging.md)")
    over.add_argument("--tenants", type=int, default=4,
                      help="VMs sharing the host (default 4)")
    over.add_argument("--ranks", type=int, default=2,
                      help="physical ranks on the host (default 2)")
    over.add_argument("--dpus-per-rank", type=int, default=8)
    over.add_argument("--rounds", type=int, default=8,
                      help="interleaved VA rounds per tenant")
    over.add_argument("--ratio", type=float, default=2.0,
                      help="pager overcommit ratio (default 2.0)")
    over.set_defaults(fn=cmd_overcommit)

    mon = sub.add_parser(
        "monitor",
        help="run a scenario under the telemetry pipeline "
             "(docs/monitoring.md)")
    mon.add_argument("--scenario", default="quick",
                     choices=["quick", "prim", "noisy", "paging", "drill",
                              "cluster", "chaos"])
    mon.add_argument("--quick", action="store_true",
                     help="force the quick composite suite (the CI smoke)")
    mon.add_argument("--seed", type=int, default=0,
                     help="same seed, same telemetry digest")
    mon.add_argument("--interval", type=float, default=None,
                     help="override the scrape cadence (simulated seconds)")
    mon.add_argument("--out", default=None, metavar="FILE",
                     help="write the self-contained HTML dashboard here")
    mon.add_argument("--format", choices=["text", "json"], default="text",
                     help="stdout format (the dashboard is always HTML)")
    mon.set_defaults(fn=cmd_monitor)

    sub.add_parser("spec", help="print the virtio-pim specification"
                   ).set_defaults(fn=cmd_spec)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output was piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
