"""Deterministic synthetic workload generators.

Every generator takes a ``seed`` so experiments are reproducible and the
CPU references in the app modules verify against the exact same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_array(n: int, dtype=np.int32, lo: int = 0, hi: int = 1 << 16,
                 seed: int = 0) -> np.ndarray:
    """Uniform random integer array."""
    return _rng(seed).integers(lo, hi, size=n, dtype=dtype)


def sorted_array(n: int, dtype=np.int64, seed: int = 0) -> np.ndarray:
    """Sorted array of distinct-ish values (binary-search input)."""
    arr = np.cumsum(_rng(seed).integers(1, 8, size=n, dtype=dtype))
    return arr.astype(dtype)


def random_matrix(rows: int, cols: int, dtype=np.int32, lo: int = 0,
                  hi: int = 64, seed: int = 0) -> np.ndarray:
    """Dense random matrix (GEMV / TRNS input)."""
    return _rng(seed).integers(lo, hi, size=(rows, cols), dtype=dtype)


@dataclass
class CsrMatrix:
    """Compressed sparse row matrix with int32 values."""

    nr_rows: int
    nr_cols: int
    row_ptr: np.ndarray   #: int32, len nr_rows + 1
    col_idx: np.ndarray   #: int32
    values: np.ndarray    #: int32

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.nr_rows, self.nr_cols), dtype=np.int64)
        for r in range(self.nr_rows):
            s, e = self.row_ptr[r], self.row_ptr[r + 1]
            dense[r, self.col_idx[s:e]] = self.values[s:e]
        return dense


def random_csr(rows: int, cols: int, nnz_per_row: int = 8,
               seed: int = 0) -> CsrMatrix:
    """Random CSR matrix with ~``nnz_per_row`` entries per row.

    Column indices are sampled with replacement and deduplicated per row
    (vectorized), so the effective count can be slightly below the draw;
    with nnz << cols collisions are rare.
    """
    rng = _rng(seed)
    counts = rng.integers(1, max(2, 2 * nnz_per_row), size=rows)
    counts = np.minimum(counts, cols).astype(np.int64)
    draw_ptr = np.zeros(rows + 1, dtype=np.int64)
    np.cumsum(counts, out=draw_ptr[1:])
    draws = rng.integers(0, cols, size=int(draw_ptr[-1]), dtype=np.int64)
    # Deduplicate per row without a Python loop: sort (row, col) pairs and
    # drop repeated pairs.
    row_of = np.repeat(np.arange(rows, dtype=np.int64), counts)
    keys = row_of * cols + draws
    keys = np.unique(keys)  # sorted, unique (row, col) pairs
    row_final = keys // cols
    col_idx = (keys % cols).astype(np.int32)
    row_counts = np.bincount(row_final, minlength=rows)
    # Guarantee at least one entry per row.
    empty = np.nonzero(row_counts == 0)[0]
    if empty.size:
        extra_cols = rng.integers(0, cols, size=empty.size)
        keys = np.concatenate([keys, empty * cols + extra_cols])
        keys = np.unique(keys)
        row_final = keys // cols
        col_idx = (keys % cols).astype(np.int32)
        row_counts = np.bincount(row_final, minlength=rows)
    row_ptr = np.zeros(rows + 1, dtype=np.int32)
    np.cumsum(row_counts, out=row_ptr[1:])
    values = rng.integers(1, 16, size=col_idx.size, dtype=np.int32)
    return CsrMatrix(rows, cols, row_ptr, col_idx, values)


def random_graph_csr(nr_vertices: int, avg_degree: int = 4,
                     seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Random directed graph in CSR form: (row_ptr, col_idx).

    Built to be mostly connected from vertex 0 (a spine plus random
    edges) so BFS reaches a meaningful fraction of the graph.
    """
    rng = _rng(seed)
    n = nr_vertices
    spine_src = np.arange(n - 1, dtype=np.int64)
    spine_dst = spine_src + 1
    extra = n * max(0, avg_degree - 1)
    src = rng.integers(0, n, size=extra)
    dst = rng.integers(0, n, size=extra)
    keep = src != dst
    all_src = np.concatenate([spine_src, src[keep]])
    all_dst = np.concatenate([spine_dst, dst[keep]])
    keys = np.unique(all_src * n + all_dst)   # sorted unique edges
    srcs = keys // n
    col_idx = (keys % n).astype(np.int32)
    row_ptr = np.zeros(n + 1, dtype=np.int32)
    np.cumsum(np.bincount(srcs, minlength=n), out=row_ptr[1:])
    return row_ptr, col_idx


def random_image(nr_pixels: int, depth: int = 256, seed: int = 0,
                 ) -> np.ndarray:
    """Pixel stream with a skewed (roughly Gaussian) intensity histogram."""
    rng = _rng(seed)
    vals = rng.normal(loc=depth / 2, scale=depth / 6, size=nr_pixels)
    return np.clip(vals, 0, depth - 1).astype(np.uint16)
