"""A synthetic stand-in for the Wikipedia subset of the Index Search app.

The paper's UPMEM Index Search benchmark scans an index built over 4305
files from the English Wikipedia, answering 445 search requests sent in
batches of 128.  We cannot ship Wikipedia, so :class:`SyntheticCorpus`
generates a corpus with a Zipfian vocabulary — the property that matters
for the benchmark is the *shape* of the inverted index (a few huge
posting lists, many small ones), which Zipfian word frequencies produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


@dataclass
class SyntheticCorpus:
    """A document collection plus its inverted index."""

    nr_documents: int = 430
    vocabulary_size: int = 5000
    avg_words_per_doc: int = 200
    seed: int = 7
    documents: List[np.ndarray] = field(default_factory=list, repr=False)
    index: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict,
                                                    repr=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        # Zipf-ish word distribution over the vocabulary.
        ranks = np.arange(1, self.vocabulary_size + 1, dtype=np.float64)
        probs = 1.0 / ranks
        probs /= probs.sum()
        for doc_id in range(self.nr_documents):
            length = max(8, int(rng.normal(self.avg_words_per_doc,
                                           self.avg_words_per_doc / 4)))
            words = rng.choice(self.vocabulary_size, size=length, p=probs)
            self.documents.append(words.astype(np.int32))
            for pos, word in enumerate(words):
                self.index.setdefault(int(word), []).append((doc_id, pos))

    # -- flattened index for DPU distribution ---------------------------------

    def postings_array(self) -> Tuple[np.ndarray, np.ndarray]:
        """Flatten the index into (word_offsets, postings) int32 arrays.

        ``postings`` holds (doc_id, position) pairs flattened;
        ``word_offsets[w]`` is the pair-index where word ``w`` starts.
        """
        offsets = np.zeros(self.vocabulary_size + 1, dtype=np.int32)
        chunks = []
        for word in range(self.vocabulary_size):
            pairs = self.index.get(word, [])
            offsets[word + 1] = offsets[word] + len(pairs)
            if pairs:
                chunks.append(np.array(pairs, dtype=np.int32).reshape(-1))
        postings = (np.concatenate(chunks) if chunks
                    else np.empty(0, dtype=np.int32))
        return offsets, postings

    def queries(self, nr_queries: int = 445, seed: int = 11) -> np.ndarray:
        """Search requests: word ids, biased to common words."""
        rng = np.random.default_rng(seed)
        ranks = np.arange(1, self.vocabulary_size + 1, dtype=np.float64)
        probs = 1.0 / np.sqrt(ranks)
        probs /= probs.sum()
        return rng.choice(self.vocabulary_size, size=nr_queries,
                          p=probs).astype(np.int32)

    def search(self, word: int) -> List[Tuple[int, int]]:
        """CPU reference: (doc_id, position) hits for ``word``."""
        return self.index.get(int(word), [])
