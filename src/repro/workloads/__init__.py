"""Workload generators for the PrIM applications and microbenchmarks."""

from repro.workloads.generators import (
    random_array,
    random_matrix,
    random_csr,
    random_graph_csr,
    random_image,
    sorted_array,
)
from repro.workloads.wikipedia import SyntheticCorpus

__all__ = [
    "random_array",
    "random_matrix",
    "random_csr",
    "random_graph_csr",
    "random_image",
    "sorted_array",
    "SyntheticCorpus",
]
