"""QoS policy declarations (frozen, hashable, preset-friendly).

A :class:`QosConfig` rides on :class:`~repro.virt.opts.OptimizationConfig`
(``Optimization(qos=QosConfig(...))``) and is therefore part of a VM's
identity; it must stay frozen so presets keep comparing by value.  The
default everywhere is ``qos=None``: no flow is registered, no arbitration
runs, and every modeled duration is bit-identical to the committed
wall-clock digest.

``enforce`` selects between the two *modeled* contention regimes:

- ``False`` — the flow is registered and contention is modeled, but the
  event loop stays FIFO and the bus a free-for-all.  This is the honest
  noisy-neighbor baseline (what co-residency costs without QoS).
- ``True`` — weighted-fair queueing, weighted bus shares, token-bucket
  throttles, SLO actuation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.qos.slo import SloObjective


@dataclass(frozen=True)
class QosConfig:
    """Per-VM QoS policy (see ``docs/qos.md`` for the model)."""

    #: WFQ weight: this flow's relative claim on the shared bus.
    weight: float = 1.0
    #: ``True`` = enforce isolation (WFQ + throttles); ``False`` =
    #: register the flow but model the unmanaged FIFO free-for-all.
    enforce: bool = True
    #: Tenant identity for SLO bookkeeping; defaults to the VM id.
    tenant: Optional[str] = None
    #: Declared offered load in [0, 1]; ``None`` = measure it.
    demand: Optional[float] = None
    #: Declared bus seconds of one typical operation; ``None`` = measure.
    mean_op_s: Optional[float] = None
    #: Kick-rate throttle (virtio kicks per simulated second); ``None``
    #: disables the kick bucket.
    kick_rate_per_s: Optional[float] = None
    #: Burst allowance of the kick bucket, in kicks.
    kick_burst: float = 64.0
    #: Byte-rate throttle on transferred payload bytes; ``None`` disables
    #: the byte bucket.
    bytes_per_s: Optional[float] = None
    #: Burst allowance of the byte bucket, in bytes.
    byte_burst: float = 8 << 20

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"qos weight must be positive, got {self.weight}")
        if self.demand is not None and not 0.0 <= self.demand <= 1.0:
            raise ValueError(f"declared demand must be in [0, 1], "
                             f"got {self.demand}")
        for name in ("kick_rate_per_s", "bytes_per_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class FleetQosPolicy:
    """Cluster-level QoS: per-deadline-class configs + SLO objectives.

    The fleet scheduler stamps the matching :class:`QosConfig` (with the
    tenant filled in) onto every VM it books; the load generator feeds
    session outcomes to an :class:`~repro.qos.slo.SloTracker` and runs
    the enforcer between events.
    """

    interactive: QosConfig = QosConfig(weight=4.0)
    batch: QosConfig = QosConfig(weight=1.0)
    objectives: Tuple[SloObjective, ...] = ()

    def for_class(self, deadline_class: str) -> QosConfig:
        if deadline_class == "interactive":
            return self.interactive
        return self.batch
