"""Token-bucket throttles with *modeled* wait accounting.

A bucket never sleeps: :meth:`TokenBucket.consume` returns the simulated
wait the caller must fold into its operation's duration, keeping the
single-writer clock rule intact.  Debt-based pacing: a consume may drive
the bucket negative, and the wait is the time the refill needs to pay
the debt back — so a sustained over-rate producer is paced to exactly
``rate`` in the long run.
"""

from __future__ import annotations


class TokenBucket:
    """A classic token bucket over simulated time.

    ``rate`` tokens accrue per simulated second up to ``burst``; consume
    returns the modeled wait (0.0 when tokens cover the request).  Debt
    is bounded by ``max_debt_s`` seconds of refill so one huge request
    cannot poison every follow-up with an unbounded backlog.
    """

    def __init__(self, rate: float, burst: float,
                 max_debt_s: float = 0.1) -> None:
        if rate <= 0:
            raise ValueError(f"bucket rate must be positive, got {rate}")
        if burst <= 0:
            raise ValueError(f"bucket burst must be positive, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_debt_s = float(max_debt_s)
        self.tokens = float(burst)
        self._last = 0.0

    def _refill(self, now: float) -> None:
        dt = now - self._last
        if dt > 0:
            self.tokens = min(self.burst, self.tokens + dt * self.rate)
        self._last = max(self._last, now)

    def consume(self, n: float, now: float) -> float:
        """Take ``n`` tokens; returns the modeled wait in seconds."""
        if n < 0:
            raise ValueError(f"cannot consume {n} tokens")
        self._refill(now)
        self.tokens -= n
        if self.tokens >= 0:
            return 0.0
        wait = -self.tokens / self.rate
        # Bound the carried debt (not the returned wait): the *next*
        # consume starts from at most max_debt_s seconds in the red.
        self.tokens = max(self.tokens, -self.rate * self.max_debt_s)
        return wait

    def scale_rate(self, factor: float, floor: float = 0.0) -> float:
        """Multiply the refill rate (SLO actuation); returns the new rate."""
        if factor <= 0:
            raise ValueError(f"rate scale factor must be positive, got {factor}")
        self.rate = max(floor, self.rate * factor) if floor > 0 \
            else self.rate * factor
        return self.rate
