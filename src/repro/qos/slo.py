"""Service-level objectives: declaration, burn tracking, actuation.

An :class:`SloObjective` declares what one tenant was promised (latency
p99 and/or session throughput).  The :class:`SloTracker` ingests session
outcomes and computes each objective's **burn rate** — observed/target
for latency, target/observed for throughput, so >1.0 always means "the
objective is burning hot".  The :class:`SloEnforcer` watches burn rates
and actuates, in escalating order:

1. boost the victim flow's weight (more bus share under WFQ);
2. tighten co-resident offenders' byte-rate throttles;
3. emit a migration hint the Consolidator serves by re-homing the
   victim's placement onto the least-loaded host.

Everything runs on simulated time and the shared metrics registry
(``repro_qos_slo_*`` families); nothing here advances the clock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.observability import MetricsRegistry
from repro.observability.instruments import SloInstruments
from repro.observability.stats import percentile_linear


@dataclass(frozen=True)
class SloObjective:
    """One tenant's declared objective."""

    tenant: str
    #: Target p99 session latency in simulated seconds; ``None`` = no
    #: latency objective.
    latency_p99_s: Optional[float] = None
    #: Target completed-session rate (sessions per simulated second);
    #: ``None`` = no throughput objective.
    min_sessions_per_s: Optional[float] = None
    #: Sliding sample window the burn rate is computed over.
    window: int = 16

    def __post_init__(self) -> None:
        if self.latency_p99_s is None and self.min_sessions_per_s is None:
            raise ValueError(
                f"objective for tenant {self.tenant!r} declares neither a "
                "latency nor a throughput target")


# Linear-interpolation percentile (numpy's default); the implementation
# moved to the shared stats module, this alias keeps call sites and the
# existing tests' import path stable.
_percentile = percentile_linear


class SloTracker:
    """Windows of per-tenant session outcomes, feeding burn rates."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 max_window: int = 256) -> None:
        self.max_window = max_window
        #: tenant -> (completion_time, latency_s) samples, newest last.
        self._sessions: Dict[str, Deque[Tuple[float, float]]] = {}
        self.obs = SloInstruments(metrics) if metrics is not None else None

    def observe_session(self, tenant: str, latency_s: float,
                        now: float) -> None:
        window = self._sessions.setdefault(
            tenant, deque(maxlen=self.max_window))
        window.append((now, latency_s))

    def sessions(self, tenant: str) -> int:
        return len(self._sessions.get(tenant, ()))

    def latency_p99(self, tenant: str, window: int) -> float:
        samples = self._sessions.get(tenant)
        if not samples:
            return 0.0
        recent = [latency for _, latency in list(samples)[-window:]]
        return _percentile(recent, 0.99)

    def session_rate(self, tenant: str, window: int, now: float) -> float:
        """Completed sessions per second over the recent window."""
        samples = self._sessions.get(tenant)
        if not samples:
            return 0.0
        recent = list(samples)[-window:]
        span = now - recent[0][0]
        if span <= 0:
            return 0.0
        return len(recent) / span

    def burn_rate(self, objective: SloObjective, now: float) -> float:
        """The objective's burn: max over its declared targets; >1 = hot.

        Returns 0.0 until the tenant has any samples — an idle tenant is
        not burning, it is absent.
        """
        if self.sessions(objective.tenant) == 0:
            return 0.0
        burn = 0.0
        if objective.latency_p99_s is not None:
            observed = self.latency_p99(objective.tenant, objective.window)
            burn = max(burn, observed / objective.latency_p99_s)
            if self.obs is not None:
                self.obs.burn(objective.tenant, "latency",
                              observed / objective.latency_p99_s)
        if objective.min_sessions_per_s is not None:
            rate = self.session_rate(objective.tenant, objective.window, now)
            ratio = (objective.min_sessions_per_s / rate
                     if rate > 0 else float("inf"))
            burn = max(burn, ratio)
            if self.obs is not None:
                self.obs.burn(objective.tenant, "throughput",
                              min(ratio, 1e6))
        return burn


@dataclass
class SloAction:
    """One actuation the enforcer took."""

    tenant: str
    action: str          #: ``boost_weight`` | ``throttle`` | ``migrate_hint``
    detail: str = ""


class SloEnforcer:
    """Turns hot burn rates into weight, throttle and placement changes.

    Escalation ladder per consecutive hot evaluation: first boost the
    victim's WFQ weight (cheap, reversible), then tighten co-resident
    offenders' byte throttles, and once both are exhausted emit a
    migration hint.  A burn back under ``cool`` resets the ladder.
    """

    def __init__(self, tracker: SloTracker,
                 objectives: Tuple[SloObjective, ...] = (),
                 metrics: Optional[MetricsRegistry] = None,
                 hot: float = 1.0, cool: float = 0.8,
                 max_weight: float = 16.0,
                 throttle_step: float = 0.75,
                 min_rate_scale: float = 0.25) -> None:
        self.tracker = tracker
        self.objectives = tuple(objectives)
        self.hot = hot
        self.cool = cool
        self.max_weight = max_weight
        self.throttle_step = throttle_step
        self.min_rate_scale = min_rate_scale
        self.obs = SloInstruments(metrics) if metrics is not None else None
        #: tenant -> [(flow, host_id)] currently serving that tenant.
        self._bound: Dict[str, List[Tuple[object, Optional[str]]]] = {}
        self._streak: Dict[str, int] = {}
        self._hints: List[str] = []
        self.actions: List[SloAction] = []

    # -- flow registry -------------------------------------------------------

    def bind(self, tenant: str, flow, host_id: Optional[str] = None) -> None:
        self._bound.setdefault(tenant, []).append((flow, host_id))

    def unbind(self, tenant: str, flow) -> None:
        flows = self._bound.get(tenant, [])
        self._bound[tenant] = [(f, h) for f, h in flows if f is not flow]
        if not self._bound[tenant]:
            self._bound.pop(tenant)

    def _offenders(self, tenant: str) -> List[Tuple[str, object]]:
        """Bound flows of *other* tenants sharing a host with ``tenant``."""
        hosts = {host for _, host in self._bound.get(tenant, ())
                 if host is not None}
        out = []
        for other, flows in self._bound.items():
            if other == tenant:
                continue
            for flow, host in flows:
                if host is None or not hosts or host in hosts:
                    out.append((other, flow))
        return out

    # -- the control loop body ----------------------------------------------

    def evaluate(self, now: float) -> List[SloAction]:
        """One enforcement pass; returns the actions taken this pass."""
        taken: List[SloAction] = []
        for objective in self.objectives:
            tenant = objective.tenant
            burn = self.tracker.burn_rate(objective, now)
            if burn <= self.hot:
                if burn < self.cool:
                    self._streak[tenant] = 0
                continue
            if self.obs is not None:
                kind = ("latency" if objective.latency_p99_s is not None
                        else "throughput")
                self.obs.violation(tenant, kind)
            streak = self._streak.get(tenant, 0) + 1
            self._streak[tenant] = streak
            if streak == 1:
                taken.extend(self._boost_weight(tenant))
            elif streak == 2:
                taken.extend(self._throttle_offenders(tenant))
            else:
                taken.extend(self._hint_migration(tenant))
        self.actions.extend(taken)
        return taken

    def _boost_weight(self, tenant: str) -> List[SloAction]:
        out = []
        for flow, _ in self._bound.get(tenant, ()):
            new = min(self.max_weight, flow.weight * 2.0)
            if new > flow.weight:
                flow.set_weight(new)
                out.append(SloAction(tenant, "boost_weight",
                                     f"weight={new:g}"))
                if self.obs is not None:
                    self.obs.actuation(tenant, "boost_weight")
        return out

    def _throttle_offenders(self, tenant: str) -> List[SloAction]:
        out = []
        for offender, flow in self._offenders(tenant):
            new_rate = flow.scale_byte_rate(self.throttle_step,
                                            min_scale=self.min_rate_scale)
            if new_rate is not None:
                out.append(SloAction(offender, "throttle",
                                     f"bytes_per_s={new_rate:g}"))
                if self.obs is not None:
                    self.obs.actuation(offender, "throttle")
        return out

    def _hint_migration(self, tenant: str) -> List[SloAction]:
        if tenant in self._hints:
            return []
        self._hints.append(tenant)
        if self.obs is not None:
            self.obs.actuation(tenant, "migrate_hint")
        return [SloAction(tenant, "migrate_hint")]

    def take_migration_hints(self) -> List[str]:
        """Drain pending hints (the Consolidator's ``relieve`` input)."""
        hints, self._hints = self._hints, []
        return hints
