"""One VM's QoS flow handle: arbitration, throttles, telemetry.

A :class:`QosFlow` is created by the Firecracker launcher for every VM
whose :class:`~repro.virt.opts.OptimizationConfig` carries a
:class:`~repro.qos.config.QosConfig`.  The VM's frontends call
:meth:`on_kick` on every transferq roundtrip (dispatch wait + token
throttles) and its backend calls :meth:`on_bus` on every data transfer
(bandwidth-share stretch) — both return modeled durations the caller
folds into its op time; neither touches the clock.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.timing import BandwidthArbiter
from repro.observability import MetricsRegistry
from repro.observability.instruments import QosInstruments
from repro.observability.spans import SpanRecorder
from repro.qos.config import QosConfig
from repro.qos.tokens import TokenBucket


class QosFlow:
    """The live QoS state of one VM (see ``docs/qos.md``)."""

    def __init__(self, flow_id: str, config: QosConfig,
                 arbiter: BandwidthArbiter, loop,
                 metrics: Optional[MetricsRegistry] = None,
                 spans: Optional[SpanRecorder] = None) -> None:
        self.flow_id = flow_id
        self.config = config
        self.arbiter = arbiter
        self.loop = loop
        self.tenant = config.tenant or flow_id
        self._flow = arbiter.register(
            flow_id, weight=config.weight, demand=config.demand,
            mean_op_s=config.mean_op_s)
        self._kick_bucket = (
            TokenBucket(config.kick_rate_per_s, config.kick_burst)
            if config.kick_rate_per_s is not None else None)
        self._byte_bucket = (
            TokenBucket(config.bytes_per_s, config.byte_burst)
            if config.bytes_per_s is not None else None)
        self._byte_rate_floor = (
            config.bytes_per_s if config.bytes_per_s is not None else 0.0)
        self.obs = (QosInstruments(metrics, flow_id, spans=spans)
                    if metrics is not None else None)
        self.spans = spans
        if self.obs is not None:
            self.obs.weight(config.weight)
        self.closed = False

    # -- knobs (SLO actuation) ----------------------------------------------

    @property
    def weight(self) -> float:
        return self._flow.weight

    def set_weight(self, weight: float) -> None:
        self.arbiter.set_weight(self.flow_id, weight)
        if self.obs is not None:
            self.obs.weight(weight)

    def scale_byte_rate(self, factor: float,
                        min_scale: float = 0.25) -> Optional[float]:
        """Tighten (or relax) the byte throttle; ``None`` if unthrottled."""
        if self._byte_bucket is None:
            return None
        floor = self._byte_rate_floor * min_scale
        return self._byte_bucket.scale_rate(factor, floor=floor)

    # -- the two data-plane hooks -------------------------------------------

    def _throttle(self, bucket: Optional[TokenBucket], amount: float,
                  resource: str, now: float) -> float:
        if bucket is None or amount <= 0:
            return 0.0
        wait = bucket.consume(amount, now)
        if wait > 0:
            if self.obs is not None:
                self.obs.throttled(resource, wait)
            if self.spans is not None:
                self.spans.event("qos.throttle", "qos", wait,
                                 vm=self.flow_id, resource=resource)
        return wait

    def on_kick(self, kind: str, payload_bytes: int, now: float) -> float:
        """Frontend hook, once per transferq roundtrip.

        Returns the modeled wait: token-bucket throttles (enforced flows
        only) plus the event loop's dispatch delay for this flow.
        """
        wait = 0.0
        if self.config.enforce:
            wait += self._throttle(self._kick_bucket, 1.0, "kicks", now)
            wait += self._throttle(self._byte_bucket, float(payload_bytes),
                                   "bytes", now + wait)
        queue_s, mode = self.loop.dispatch(self.flow_id, now + wait,
                                           fair=self.config.enforce)
        if self.obs is not None:
            self.obs.arbitration(mode, queue_s, cause="queue")
        if queue_s > 0 and self.spans is not None:
            self.spans.event("qos.arbitrate", "qos", queue_s,
                             vm=self.flow_id, kind=kind, mode=mode,
                             cause="queue")
        return wait + queue_s

    def on_bus(self, bus_seconds: float, now: float) -> float:
        """Backend hook, once per data transfer of ``bus_seconds``.

        Returns the bandwidth-sharing stretch and accounts the flow's
        own usage (stretch included — a slowed transfer occupies the bus
        longer) into the arbiter's demand window.
        """
        share = self.arbiter.bus_share(self.flow_id, bus_seconds, now,
                                       fair=self.config.enforce)
        self.arbiter.record(self.flow_id, bus_seconds + share, now)
        if share > 0:
            mode = "wfq" if self.config.enforce else "fifo"
            if self.obs is not None:
                self.obs.arbitration(mode, share, cause="share")
            if self.spans is not None:
                self.spans.event("qos.arbitrate", "qos", share,
                                 vm=self.flow_id, mode=mode, cause="share")
        return share

    def intra_contention(self, base: float, now: float) -> float:
        """Neighbor-aware replacement for the fixed contention factor."""
        return self.arbiter.contention_factor(
            self.flow_id, base, now, fair=self.config.enforce)

    def close(self) -> None:
        """Unregister from the arbiter (VM shutdown)."""
        if not self.closed:
            self.arbiter.unregister(self.flow_id)
            self.closed = True
