"""Multi-tenant performance isolation (QoS) for co-resident vUPMEM VMs.

The paper's R2 motivation (many tenants multiplex one PIM server) stops
at allocation-time arbitration: the Manager hands out ranks, but once
placed, co-resident VMs contend freely on the host bus and the
Firecracker event loop.  ``repro.qos`` turns the fleet's deadline
classes into *enforced* per-tenant isolation (``docs/qos.md``):

- :class:`~repro.qos.config.QosConfig` — opt-in per-VM policy
  (``Optimization(qos=QosConfig(...))``); ``None`` keeps every default
  path bit-identical to the committed wall-clock digest;
- :class:`~repro.hardware.timing.BandwidthArbiter` — the shared bus as
  a weighted-fair resource across registered flows;
- :class:`~repro.qos.flow.QosFlow` — one VM's flow handle: event-loop
  dispatch, token-bucket throttles, telemetry;
- :mod:`repro.qos.slo` — declared latency/throughput objectives, burn
  tracking, and weight/throttle/migration actuation.
"""

from repro.qos.config import FleetQosPolicy, QosConfig
from repro.qos.flow import QosFlow
from repro.qos.slo import SloEnforcer, SloObjective, SloTracker
from repro.qos.tokens import TokenBucket

__all__ = [
    "FleetQosPolicy",
    "QosConfig",
    "QosFlow",
    "SloEnforcer",
    "SloObjective",
    "SloTracker",
    "TokenBucket",
]
