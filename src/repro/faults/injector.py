"""The fault injector: executes a :class:`FaultPlan` against a live stack.

Arming installs *hook closures* on the instances at each layer seam
(``Rank.fault_hook``, ``VUpmemFrontend.fault_hook``,
``VUpmemBackend.fault_hook``); hosts are polled via
:meth:`FaultInjector.fire_host_faults` because no per-operation hook
exists at fleet scope.  Unarmed stacks never see the injector — the
seams check ``fault_hook is not None`` and skip, so a run without a
plan is byte-identical to a build without this package.

Firing is *pull-based*: a hook pops every pending event whose ``at`` is
<= ``clock.now`` and whose target matches the calling instance.  Hooks
never advance the clock; transient faults carry their modeled detection
latency as ``penalty_s`` (or a returned stall duration) which the caller
folds into the durations it already returns — this keeps simulated time
single-writer and avoids double-counting.

Every fired event is recorded with its *resolved* target and parameters;
:meth:`FaultInjector.timeline_digest` hashes those lines, which is what
the determinism benchmark compares across runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import (
    BackendHungError,
    DpuFaultError,
    FaultInjectionError,
    TransportCorruptionError,
)
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.hardware.timing import DEFAULT_COST_MODEL, CostModel
from repro.observability.instruments import FaultInstruments


@dataclass(frozen=True)
class FiredFault:
    """One fault that actually fired, with wildcard/params resolved."""

    scheduled_at: float
    fired_at: float
    kind: FaultKind
    target: str
    params: Tuple[Tuple[str, object], ...] = ()

    def describe(self) -> str:
        params = ",".join(f"{k}={v}" for k, v in self.params)
        return (f"{self.scheduled_at:.9f}->{self.fired_at:.9f} "
                f"{self.kind.value} {self.target} [{params}]")


class FaultInjector:
    """Arms a plan onto a stack and fires events as simulated time passes.

    One injector serves one clock domain; arm it on a machine
    (:meth:`arm_machine`), on each VM's devices (:meth:`arm_vm`), or on
    a fleet (:meth:`arm_cluster`) — any combination, as the plan's
    targets require.
    """

    def __init__(self, plan: FaultPlan, clock,
                 registry=None, cost: Optional[CostModel] = None) -> None:
        self.plan = plan
        self.clock = clock
        self.cost = cost or DEFAULT_COST_MODEL
        self.obs = FaultInstruments(registry) if registry is not None else None
        #: Events not yet fired, in schedule order.
        self.pending: List[FaultEvent] = list(plan.events)
        #: Events fired so far, in firing order, fully resolved.
        self.fired: List[FiredFault] = []
        # Parameter draws (which DPU, which byte, which bit) come from a
        # seeded stream separate from the plan's so adding a knob to one
        # never perturbs the other.
        self._rng = np.random.default_rng((plan.seed << 1) ^ 0x5EED)
        self.manager = None
        self.scheduler = None
        self.hosts: Dict[str, object] = {}
        self._armed: List[object] = []

    # -- arming ------------------------------------------------------------

    def arm_machine(self, machine, manager=None) -> None:
        """Install rank-seam hooks on every rank of ``machine``.

        ``manager`` (when given) learns about injected rank failures via
        :meth:`~repro.virt.manager.Manager.mark_failed`; each machine's
        hooks capture *its own* manager, so fleet arming marks the right
        host's rank table even though rank indices repeat across hosts.
        """
        if manager is not None and self.manager is None:
            self.manager = manager
        for rank in machine.ranks:
            rank.fault_hook = self._make_rank_hook(manager)
            self._armed.append(rank)

    def arm_vm(self, vm) -> None:
        """Install transport/backend hooks on every vUPMEM device."""
        for device in vm.devices:
            device.frontend.fault_hook = self._make_transport_hook(
                device.device_id)
            device.backend.fault_hook = self._make_backend_hook(
                device.device_id)
            self._armed.append(device.frontend)
            self._armed.append(device.backend)

    def arm_cluster(self, cluster, scheduler=None) -> None:
        """Register fleet hosts (and their machines) for fault delivery."""
        self.scheduler = scheduler
        for host in sorted(cluster.hosts, key=lambda h: h.host_id):
            self.hosts[host.host_id] = host
            self.arm_machine(host.machine, host.manager)

    def disarm(self) -> None:
        """Remove every installed hook; pending events stay scheduled."""
        for target in self._armed:
            target.fault_hook = None
        self._armed.clear()

    # -- event selection ---------------------------------------------------

    def _pop_due(self, scope: str, instance: str,
                 want=None) -> List[FaultEvent]:
        now = self.clock.now
        due: List[FaultEvent] = []
        keep: List[FaultEvent] = []
        for event in self.pending:
            if (event.at <= now and event.matches(scope, instance)
                    and (want is None or want(event))):
                due.append(event)
            else:
                keep.append(event)
        if due:
            self.pending = keep
        return due

    def _pop_one(self, scope: str, instance: str,
                 want=None) -> List[FaultEvent]:
        """Like :meth:`_pop_due` but removes at most the first match —
        for seams whose firing raises, so later events stay pending for
        the caller's next attempt instead of being dropped mid-raise."""
        now = self.clock.now
        for i, event in enumerate(self.pending):
            if (event.at <= now and event.matches(scope, instance)
                    and (want is None or want(event))):
                del self.pending[i]
                return [event]
        return []

    def _record(self, event: FaultEvent, target: str, **resolved) -> None:
        params = dict(event.params)
        params.update(resolved)
        self.fired.append(FiredFault(
            scheduled_at=event.at, fired_at=self.clock.now,
            kind=event.kind, target=target,
            params=tuple(sorted(params.items()))))
        if self.obs is not None:
            self.obs.injected(event.kind.value)

    def _detected(self, kind: FaultKind, layer: str) -> None:
        if self.obs is not None:
            self.obs.detected(kind.value, layer)

    # -- rank seam ---------------------------------------------------------

    def _make_rank_hook(self, manager):
        def hook(rank, op: str) -> None:
            """Called by ``Rank._guard`` before every guarded rank op."""
            instance = str(rank.index)
            for event in self._pop_due(
                    "rank", instance,
                    lambda e: e.kind is not FaultKind.DPU_KERNEL_FAULT):
                self._fire_rank_event(event, rank, manager or self.manager)
            # A kernel fault only makes sense while booting a kernel, and
            # firing one raises — so consume exactly one per launch;
            # queued repeats crash the *next* launches (or reruns).
            if op == "launch":
                for event in self._pop_one(
                        "rank", instance,
                        lambda e: e.kind is FaultKind.DPU_KERNEL_FAULT):
                    self._fire_rank_event(event, rank,
                                          manager or self.manager)

        return hook

    def _fire_rank_event(self, event: FaultEvent, rank, manager) -> None:
        target = f"rank:{rank.index}"
        if event.kind is FaultKind.DPU_MRAM_BITFLIP:
            dpu_idx = int(event.param(
                "dpu", self._rng.integers(0, len(rank.dpus))))
            dpu = rank.dpus[dpu_idx]
            offset = int(event.param(
                "offset", self._rng.integers(0, dpu.mram.size)))
            bit = int(event.param("bit", self._rng.integers(0, 8)))
            byte = dpu.mram.read(offset, 1)[0]
            dpu.mram.write(offset, bytes([byte ^ (1 << bit)]))
            # Silent data corruption: nothing is raised; only an
            # application-level verify can notice.
            self._record(event, target, dpu=dpu_idx, offset=offset, bit=bit)
        elif event.kind is FaultKind.DPU_KERNEL_FAULT:
            dpu_idx = int(event.param(
                "dpu", self._rng.integers(0, len(rank.dpus))))
            rank.dpus[dpu_idx].fault()
            rank.obs.dpu_fault()
            self._record(event, target, dpu=dpu_idx)
            self._detected(event.kind, "hardware")
            raise DpuFaultError(
                f"injected kernel fault on rank {rank.index} DPU {dpu_idx} "
                f"at t={self.clock.now:.6f}s")
        elif event.kind is FaultKind.RANK_OFFLINE:
            from repro.hardware.rank import RankHealth
            rank.health = RankHealth.OFFLINE
            self._record(event, target)
            self._detected(event.kind, "hardware")
            if manager is not None:
                manager.mark_failed(rank.index)
            # Rank._guard raises RankOfflineError right after this hook.
        elif event.kind is FaultKind.RANK_DEGRADED:
            from repro.hardware.rank import RankHealth
            factor = float(event.param("factor", 4.0))
            rank.health = RankHealth.DEGRADED
            rank.degradation = factor
            self._record(event, target, factor=factor)
        else:  # pragma: no cover - plan validation prevents this
            raise FaultInjectionError(
                f"{event.kind.value} cannot fire at the rank seam")

    # -- transport seam ----------------------------------------------------

    def _make_transport_hook(self, device_id: str):
        def hook(frontend) -> float:
            target = f"transport:{device_id}"
            stall = 0.0
            for event in self._pop_due(
                    "transport", device_id,
                    lambda e: e.kind is FaultKind.TRANSPORT_STALL):
                stall += float(event.param("stall_s", 1e-3))
                self._record(event, target, stall_s=event.param(
                    "stall_s", 1e-3))
            # Consume at most ONE corruption per attempt: a plan with N
            # due corruption events corrupts N successive (re)tries, so
            # persistent corruption defeats a bounded retry budget.
            for event in self._pop_one(
                    "transport", device_id,
                    lambda e: e.kind is FaultKind.TRANSPORT_CORRUPTION):
                self._record(event, target)
                # Any concurrent stall rides the corruption penalty so the
                # retry path accounts for both in one place.
                raise TransportCorruptionError(
                    f"virtio-pim message to {device_id} failed its "
                    f"integrity check at t={self.clock.now:.6f}s",
                    penalty_s=self.cost.transport_corruption_detect + stall)
            return stall

        return hook

    # -- backend seam ------------------------------------------------------

    def _make_backend_hook(self, device_id: str):
        def hook(backend) -> None:
            # One hang per attempt, for the same reason as corruption:
            # popping everything at once would silently drop the events
            # the raise below skips.
            for event in self._pop_one("backend", device_id):
                self._record(event, f"backend:{device_id}")
                raise BackendHungError(
                    f"backend worker for {device_id} hung at "
                    f"t={self.clock.now:.6f}s; watchdog fired after "
                    f"{self.cost.backend_watchdog_timeout * 1e3:.1f}ms",
                    penalty_s=self.cost.backend_watchdog_timeout)

        return hook

    # -- host scope (polled) ----------------------------------------------

    def fire_host_faults(self) -> List[str]:
        """Fire due host-scope events; returns the crashed host names.

        Fleet drivers call this between scenario steps — host crashes
        have no per-operation seam to hook.
        """
        crashed: List[str] = []
        for event in self._pop_due("host", "*") + [
                e for name in sorted(self.hosts)
                for e in self._pop_due("host", name)]:
            host = self._resolve_host(event)
            if host is None:
                continue
            host.crash()
            self._record(event, f"host:{host.host_id}")
            self._detected(event.kind, "cluster")
            crashed.append(host.host_id)
            if self.scheduler is not None:
                requeued = self.scheduler.evict_host(host)
                if self.obs is not None and requeued:
                    self.obs.recovered(event.kind.value, "requeue")
        return crashed

    def _resolve_host(self, event: FaultEvent):
        if event.instance != "*":
            host = self.hosts.get(event.instance)
            return host if host is not None and host.alive else None
        for name in sorted(self.hosts):
            if self.hosts[name].alive:
                return self.hosts[name]
        return None

    # -- replay contract ---------------------------------------------------

    def timeline(self) -> str:
        """Canonical fired-event transcript (one line per fault)."""
        return "\n".join(fault.describe() for fault in self.fired)

    def timeline_digest(self) -> str:
        """sha256 over the fired timeline — equal digests mean the run
        experienced the exact same faults at the exact same times."""
        return hashlib.sha256(self.timeline().encode()).hexdigest()
