"""Fault plans: seeded, typed schedules of failure events.

A :class:`FaultPlan` is pure data — *what* goes wrong, *where* and
*when* on the shared :class:`~repro.hardware.clock.SimClock` timeline.
Executing the plan is the :class:`~repro.faults.injector.FaultInjector`'s
job, so the same plan can be replayed against different stacks (native,
VM, fleet) and the same seed always reproduces the identical schedule —
the determinism contract ``benchmarks/bench_chaos_recovery.py`` asserts.

Fault model (one event kind per observed UPMEM failure class; see
Gómez-Luna et al.'s characterization in PAPERS.md for the hardware ones):

========================  =======================================
``dpu_mram_bitflip``      silent single-bit MRAM corruption
``dpu_kernel_fault``      a DPU kernel crashes at launch
``rank_offline``          a whole rank stops answering
``rank_degraded``         a rank slows down (thermal/refresh)
``transport_corruption``  a virtio-pim message fails its checksum
``transport_stall``       a message is delayed in the queue
``backend_hang``          a VMM worker stops until the watchdog fires
``host_crash``            a fleet host dies with all its ranks
========================  =======================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FaultInjectionError


class FaultKind(enum.Enum):
    """Typed fault classes the injector knows how to fire."""

    DPU_MRAM_BITFLIP = "dpu_mram_bitflip"
    DPU_KERNEL_FAULT = "dpu_kernel_fault"
    RANK_OFFLINE = "rank_offline"
    RANK_DEGRADED = "rank_degraded"
    TRANSPORT_CORRUPTION = "transport_corruption"
    TRANSPORT_STALL = "transport_stall"
    BACKEND_HANG = "backend_hang"
    HOST_CRASH = "host_crash"


#: Which layer seam each fault kind fires at (also the valid target
#: prefix: ``rank:3``, ``transport:vm-0.vupmem0``, ``backend:*``,
#: ``host:host1``).
FAULT_SCOPES: Dict[FaultKind, str] = {
    FaultKind.DPU_MRAM_BITFLIP: "rank",
    FaultKind.DPU_KERNEL_FAULT: "rank",
    FaultKind.RANK_OFFLINE: "rank",
    FaultKind.RANK_DEGRADED: "rank",
    FaultKind.TRANSPORT_CORRUPTION: "transport",
    FaultKind.TRANSPORT_STALL: "transport",
    FaultKind.BACKEND_HANG: "backend",
    FaultKind.HOST_CRASH: "host",
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` selects the instance at the event's layer seam:
    ``"<scope>:<instance>"`` or ``"<scope>:*"`` for "the first matching
    instance to pass the hook after ``at``".  ``params`` is a sorted
    key/value tuple (kept hashable) of kind-specific knobs — e.g.
    ``dpu``/``offset``/``bit`` for a bit flip, ``factor`` for
    degradation, ``stall_s`` for a stall.
    """

    at: float
    kind: FaultKind
    target: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultInjectionError(
                f"fault event scheduled at negative time {self.at}")
        scope = FAULT_SCOPES[self.kind]
        prefix, _, instance = self.target.partition(":")
        if prefix != scope or not instance:
            raise FaultInjectionError(
                f"{self.kind.value} fires at the {scope!r} seam; target "
                f"must look like '{scope}:<instance>', got {self.target!r}")

    def param(self, key: str, default=None):
        for name, value in self.params:
            if name == key:
                return value
        return default

    @property
    def instance(self) -> str:
        return self.target.partition(":")[2]

    def matches(self, scope: str, instance: str) -> bool:
        prefix, _, wanted = self.target.partition(":")
        return prefix == scope and wanted in ("*", instance)

    def describe(self) -> str:
        """Canonical one-line form (input of the timeline digest)."""
        params = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.at:.9f} {self.kind.value} {self.target} [{params}]"


def _as_params(params: Optional[dict]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted((params or {}).items()))


class FaultPlan:
    """An ordered, seeded schedule of :class:`FaultEvent`\\ s."""

    def __init__(self, seed: int = 0,
                 events: Iterable[FaultEvent] = ()) -> None:
        self.seed = seed
        self.events: List[FaultEvent] = sorted(
            events, key=lambda e: (e.at, e.kind.value, e.target))

    def add(self, at: float, kind: FaultKind, target: str,
            **params) -> FaultEvent:
        """Schedule one event; keeps the plan sorted."""
        event = FaultEvent(at=at, kind=kind, target=target,
                           params=_as_params(params))
        self.events.append(event)
        self.events.sort(key=lambda e: (e.at, e.kind.value, e.target))
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def describe(self) -> str:
        return "\n".join(event.describe() for event in self.events)

    @classmethod
    def generate(cls, seed: int, horizon_s: float, rate_per_s: float,
                 kinds: Sequence[FaultKind] = tuple(FaultKind),
                 limits: Optional[Dict[FaultKind, int]] = None,
                 ) -> "FaultPlan":
        """Draw a random plan from one seeded generator.

        The number of events is Poisson(``rate_per_s * horizon_s``);
        times are uniform over the horizon, kinds uniform over
        ``kinds``, targets are wildcards (first matching instance).
        ``limits`` caps how many events of a kind survive — e.g.
        ``{RANK_OFFLINE: 1}`` so a chaos run cannot take every rank
        down and make the scenario unwinnable.
        """
        if horizon_s <= 0 or rate_per_s < 0:
            raise FaultInjectionError(
                f"bad plan horizon/rate: {horizon_s}/{rate_per_s}")
        rng = np.random.default_rng(seed)
        count = int(rng.poisson(rate_per_s * horizon_s))
        times = np.sort(rng.uniform(0.0, horizon_s, size=count))
        kind_picks = rng.integers(0, len(kinds), size=count)
        remaining = dict(limits or {})
        events: List[FaultEvent] = []
        for at, pick in zip(times, kind_picks):
            kind = kinds[int(pick)]
            if kind in remaining:
                if remaining[kind] <= 0:
                    continue
                remaining[kind] -= 1
            events.append(FaultEvent(
                at=float(at), kind=kind,
                target=f"{FAULT_SCOPES[kind]}:*"))
        return cls(seed=seed, events=events)
