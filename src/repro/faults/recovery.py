"""Recovery actions: what the stack does *after* a fault fires.

Three mechanisms, stacked from cheap to expensive (transient transport
retries live in the frontend itself — see
:meth:`repro.virt.frontend.VUpmemFrontend._roundtrip`):

- :func:`run_with_recovery` — re-run a whole session.  Applications in
  this repo are deterministic functions of their parameters, so a rerun
  is idempotent: the failed attempt's devices were released during
  exception unwind, the manager's FAIL state keeps the dead rank out of
  the new allocation, and the replacement rank produces the same answer.
- :class:`CheckpointStore` + :func:`failover_device` — for stateful
  residency, snapshot a device's rank at launch boundaries (§7
  checkpoint/restore) and replay the last snapshot onto a replacement
  rank instead of recomputing.
- Fleet re-placement after a host crash lives in
  :meth:`repro.cluster.scheduler.Scheduler.evict_host`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    DeviceNotLinkedError,
    DpuFaultError,
    HardwareError,
    ManagerError,
    MmapError,
    RankOfflineError,
    TransientFaultError,
)
from repro.observability.instruments import FaultInstruments
from repro.virt.migration import RankCheckpoint, checkpoint_rank, restore_rank

#: Exceptions a session rerun can plausibly clear: hardware failures
#: (the rank is FAIL-listed and the rerun gets a replacement), exhausted
#: transport retries, and devices unlinked by a previous unwind.
RECOVERABLE = (HardwareError, TransientFaultError, DeviceNotLinkedError,
               MmapError)


def fault_kind_of(exc: BaseException) -> str:
    """Map an exception to the fault-kind label used by the metrics."""
    if isinstance(exc, TransientFaultError):
        return exc.kind
    if isinstance(exc, RankOfflineError):
        return "rank_offline"
    if isinstance(exc, DpuFaultError):
        return "dpu_kernel_fault"
    return "unknown"


@dataclass
class RecoveryReport:
    """Outcome of :func:`run_with_recovery`."""

    report: object                     #: the successful ExecutionReport
    attempts: int                      #: total session runs (>= 1)
    faults: List[str] = field(default_factory=list)
    recovered: bool = False            #: True when attempts > 1

    @property
    def verified(self) -> bool:
        return bool(getattr(self.report, "verified", False))


def _pin_retry_trace(spans) -> None:
    """Make the rerun's root span share the failed attempt's trace_id,
    link it back with ``retry_of``, and force retention (faulted traces
    are always kept, whatever the sampling decision)."""
    if spans is None or spans.last_root is None:
        return
    last = spans.last_root
    spans.next_trace(trace_id=last.trace_id, retry_of=last.span_id,
                     faulted=True)


def run_with_recovery(session, app, max_attempts: int = 3,
                      retry_on_corruption: bool = True) -> RecoveryReport:
    """Run ``app`` on ``session``, re-running on recoverable faults.

    Each failed attempt's devices are released by the SDK's context-
    manager unwind (``DpuSet.__exit__``), so the rerun allocates fresh
    ranks through the manager — which skips FAIL-listed ones.  Silent
    MRAM corruption cannot raise; it surfaces as a failed ``verify`` and
    is retried too (``retry_on_corruption``) since the bit flip is the
    only corruption source in this simulator.

    Raises the last error (after accounting the lost session) when the
    attempt budget runs out.
    """
    clock = session.transport.clock
    obs = FaultInstruments(session.transport.metrics)
    spans = getattr(session.transport, "spans", None)
    faults: List[str] = []
    first_failure_at: Optional[float] = None
    for attempt in range(1, max_attempts + 1):
        try:
            report = session.run(app)
        except RECOVERABLE as exc:
            kind = fault_kind_of(exc)
            faults.append(kind)
            obs.detected(kind, "session")
            if spans is not None:
                spans.mark_last_faulted(kind)
            if first_failure_at is None:
                first_failure_at = clock.now
            if attempt >= max_attempts:
                obs.session_lost()
                raise
            obs.retry("session")
            _pin_retry_trace(spans)
            continue
        if not report.verified and retry_on_corruption:
            kind = "dpu_mram_bitflip"
            faults.append(kind)
            obs.detected(kind, "session")
            if spans is not None:
                spans.mark_last_faulted(kind)
            if first_failure_at is None:
                first_failure_at = clock.now
            if attempt >= max_attempts:
                obs.session_lost()
                return RecoveryReport(report=report, attempts=attempt,
                                      faults=faults, recovered=False)
            obs.retry("session")
            _pin_retry_trace(spans)
            continue
        if faults:
            obs.recovered(faults[-1], "rerun")
            obs.recovery_time(faults[-1], clock.now - first_failure_at)
        return RecoveryReport(report=report, attempts=attempt,
                              faults=faults, recovered=bool(faults))
    raise AssertionError("unreachable")  # pragma: no cover


class CheckpointStore:
    """Latest per-device rank snapshots (§7: launch boundaries are the
    only consistent checkpoint points)."""

    def __init__(self, clock) -> None:
        self.clock = clock
        self._by_device: Dict[str, RankCheckpoint] = {}

    def save(self, device) -> float:
        """Checkpoint ``device``'s rank; returns the copy duration."""
        mapping = device.backend.mapping
        if mapping is None:
            raise ManagerError(
                f"cannot checkpoint {device.device_id}: not linked")
        checkpoint, duration = checkpoint_rank(mapping.rank)
        self.clock.advance(duration)
        self._by_device[device.device_id] = checkpoint
        return duration

    def get(self, device_id: str) -> Optional[RankCheckpoint]:
        return self._by_device.get(device_id)

    def discard(self, device_id: str) -> None:
        self._by_device.pop(device_id, None)

    def __len__(self) -> int:
        return len(self._by_device)


def failover_device(device, manager,
                    store: Optional[CheckpointStore] = None,
                    ) -> Tuple[int, str]:
    """Re-home a device whose backing rank failed.

    FAIL-lists the dead rank, unlinks (sysfs-only — safe on dead
    hardware), allocates a replacement, and replays the device's last
    checkpoint onto it when ``store`` has one.  Returns the replacement
    rank index and the action taken (``"restore"`` or ``"relink"``).
    The mark-failed-then-unlink order matters: the manager's observer
    ignores the unlink's "free" status write for non-ALLO ranks, so the
    dead rank cannot re-enter the allocatable pool.
    """
    mapping = device.backend.mapping
    if mapping is None:
        raise ManagerError(f"device {device.device_id} is not linked")
    manager.mark_failed(mapping.rank.index)
    device.backend.unlink()
    replacement = manager.allocate(device.device_id)
    device.backend.link_rank(replacement)
    # Every transfer-cache digest describes the *dead* rank's contents;
    # the replacement starts blank (or at the checkpoint), so both sides
    # must forget before the next suppressible write.
    device.backend.resident.invalidate_all()
    device.frontend._invalidate_digests("failover")
    checkpoint = store.get(device.device_id) if store is not None else None
    if checkpoint is None:
        return replacement, "relink"
    target = manager.driver.resolve_rank(replacement)
    manager.clock.advance(restore_rank(target, checkpoint))
    return replacement, "restore"
