"""Deterministic fault injection and recovery (``repro.faults``).

The subsystem has three parts:

- :mod:`repro.faults.plan` — *what* fails and *when*: typed, seeded
  :class:`FaultPlan` schedules on the shared simulated clock;
- :mod:`repro.faults.injector` — *how* it fails: the
  :class:`FaultInjector` arms hook closures at the stack's layer seams
  (rank, virtio transport, backend, fleet host) and fires due events;
- :mod:`repro.faults.recovery` — *what happens next*: session reruns,
  checkpoint-based device failover, and the bookkeeping that proves
  recovery happened (``repro_fault_*`` metrics).

Determinism contract: the same plan seed against the same workload
produces a byte-identical fired-fault timeline
(:meth:`FaultInjector.timeline_digest`); with no plan armed, the stack
is bit-for-bit the no-faults baseline.
"""

from repro.faults.injector import FaultInjector, FiredFault
from repro.faults.plan import FAULT_SCOPES, FaultEvent, FaultKind, FaultPlan
from repro.faults.recovery import (
    RECOVERABLE,
    CheckpointStore,
    RecoveryReport,
    failover_device,
    fault_kind_of,
    run_with_recovery,
)

__all__ = [
    "FAULT_SCOPES",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FiredFault",
    "RECOVERABLE",
    "CheckpointStore",
    "RecoveryReport",
    "failover_device",
    "fault_kind_of",
    "run_with_recovery",
]
