"""Cache ablation: the content-aware transfer cache, off vs on.

Runs iterative PrIM applications twice through a vPIM VM session — once
with the default configuration and once with ``Optimization(cache=True)``
— and reports, per app:

- **wall-clock** time of the whole run (the simulator-speed view);
- **modeled T-data** (the Fig. 13 step the cache attacks) plus the
  cache's own modeled digest cost, so the trade is visible;
- a canonical sha256 over the application *output*, asserting the
  bit-exactness contract: suppression may only elide bytes the device
  already holds, never change what the app computes.

The iterative apps (NW's diagonal sweep, BFS's frontier loop, MLP's
layer-by-layer argument re-push) re-send largely-unchanged buffers each
round — exactly the redundancy PIM-CACHE exploits — which is why they
are the ablation set rather than the one-shot streaming apps.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, Tuple

import numpy as np

from repro.analysis.figures import SIZE_PROFILES, machine_for_dpus
from repro.apps.registry import app_by_short_name
from repro.core import VPim
from repro.virt.opts import OptimizationConfig

#: Iterative apps whose write streams carry the most unchanged bytes.
ABLATION_APPS = ("NW", "BFS", "MLP")

#: Per-app workload overrides applied on top of the size profile.  MLP
#: runs PrIM's measurement loop (two reps re-copying every input,
#: weights included — the loop the original benchmarks time), because a
#: single inference pushes its weights exactly once and so has no
#: weight redundancy for the cache to find; the re-pushed second rep is
#: the serving/re-run pattern PIM-CACHE targets.  Both arms of the
#: ablation run the identical operation stream.
ABLATION_OVERRIDES = {"MLP": dict(nr_reps=2)}


def output_digest(output) -> str:
    """Canonical sha256 of an application output (arrays, scalars, nests)."""
    h = hashlib.sha256()
    _feed(h, output)
    return h.hexdigest()


def _feed(h, value) -> None:
    if isinstance(value, np.ndarray):
        h.update(b"ndarray")
        h.update(str(value.dtype).encode())
        h.update(str(value.shape).encode())
        h.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, dict):
        h.update(b"dict")
        for key in sorted(value):
            h.update(str(key).encode())
            _feed(h, value[key])
    elif isinstance(value, (list, tuple)):
        h.update(b"seq")
        for item in value:
            _feed(h, item)
    elif isinstance(value, float):
        h.update(value.hex().encode())
    else:
        h.update(repr(value).encode())


def run_app_once(app_name: str, cache: bool, quick: bool,
                 nr_dpus: int = 64) -> Dict[str, object]:
    """One end-to-end vPIM run of ``app_name``; returns the measurement row.

    ``session.run`` does not retain the application output, so this
    drives ``app.run`` directly against the session transport — same
    path, but the output stays available for the byte-exactness digest.
    """
    profile = "test" if quick else "bench"
    params = dict(SIZE_PROFILES[profile][app_name])
    params.update(ABLATION_OVERRIDES.get(app_name, {}))
    app = app_by_short_name(app_name).cls(nr_dpus=nr_dpus, **params)
    opts = OptimizationConfig(cache=True) if cache else OptimizationConfig()
    vpim = VPim(machine_for_dpus(nr_dpus))
    session = vpim.vm_session(nr_vupmem=1, opts=opts)
    profiler = session.transport.profiler
    profiler.reset()
    t0 = time.perf_counter()
    output = app.run(session.transport)
    wall = time.perf_counter() - t0
    snapshot = profiler.snapshot()
    return {
        "wall_s": wall,
        "verified": bool(app.verify(output)),
        "output_sha256": output_digest(output),
        "modeled_total_s": snapshot.total_time,
        "tdata_s": snapshot.wrank_steps.get("T-data", 0.0),
        "cache_s": snapshot.wrank_steps.get("Cache", 0.0),
        "wrank_steps": {k: v for k, v in sorted(snapshot.wrank_steps.items())},
    }


def run_cache_ablation(quick: bool, nr_dpus: int = 64,
                       apps: Tuple[str, ...] = ABLATION_APPS,
                       ) -> Dict[str, dict]:
    """Off/on measurement of every ablation app.

    Each app row carries both runs plus the derived T-data reduction
    ratio (off over on+cache-cost: the modeled time the W-rank write
    path actually spends moving and digesting bytes) and whether the
    outputs were byte-identical.
    """
    results: Dict[str, dict] = {}
    for name in apps:
        off = run_app_once(name, cache=False, quick=quick, nr_dpus=nr_dpus)
        on = run_app_once(name, cache=True, quick=quick, nr_dpus=nr_dpus)
        on_tdata = float(on["tdata_s"]) + float(on["cache_s"])
        results[name] = {
            "off": off,
            "on": on,
            "tdata_reduction": (float(off["tdata_s"]) / on_tdata
                                if on_tdata > 0 else float("inf")),
            "outputs_identical": off["output_sha256"] == on["output_sha256"],
        }
    return results
