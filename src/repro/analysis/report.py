"""Reporting helpers and the paper's reference numbers.

``PAPER_CLAIMS`` collects the quantitative claims of Section 5 so that
benchmark output (and EXPERIMENTS.md) can show paper-vs-measured side by
side.  Shape assertions live in ``tests/analysis/test_paper_shapes.py``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: Quantitative claims from the paper's evaluation, keyed by experiment.
PAPER_CLAIMS: Dict[str, Dict[str, object]] = {
    "fig8": {
        "overhead_min_60": 1.01,    # BS
        "overhead_max_60": 2.07,    # NW
        "overhead_avg_60": 1.24,
        "overhead_min_480": 1.02,   # MLP
        "overhead_max_480": 2.89,   # TRNS
        "overhead_avg_480": 1.54,
        "red_interdpu_overhead_60": 33.3,
        "red_interdpu_overhead_480": 145.5,
        "bfs_interdpu_overhead_60": 3.0,
        "bfs_interdpu_overhead_480": 3.2,
        "serial_transfer_apps": ["SEL", "UNI", "SpMV", "BFS"],
    },
    "fig9": {
        "overhead_8mb": 2.33,
        "overhead_60mb": 1.29,
        "vcpu_independent": True,
    },
    "fig10": {
        "overhead_1_dpu": 2.1,
        "overhead_128_dpus": 1.3,
    },
    "fig11": {
        "rust_avg_overhead": 5.2,
        "c_avg_overhead": 1.4,
        "c_improvement_pct": 343,
    },
    "fig13": {
        "tdata_share_rust": 0.983,
        "tdata_share_c": 0.693,
    },
    "fig14": {
        "naive_overhead": 53.0,
        "prefetch_read_reduction": 0.893,
        "prefetch_msgs_before": 5000,
        "prefetch_msgs_after": 125,
        "batching_writes_reduction": 0.958,
        "batching_interdpu_reduction": 0.953,
        "batching_ctx_before": 10000,
        "batching_ctx_after": 402,
        "combined_speedup": 10.8,
    },
    "fig15": {
        "whole_app_speedup_avg": 1.13,
        "write_speedup_avg": 1.4,
    },
    "manager": {
        "alloc_ms": 36.0,
        "reset_ms": 597.0,
        "idle_cpu": 0.40,
        "reset_cpu": 0.92,
    },
    "boot": {"vupmem_boot_ms_max": 2.0},
    "frontend": {"memory_overhead_mb_per_dpu": 1.37},
    "checksum": {"ci_ops_min": 8000, "ci_ops_max": 28000},
}


def format_table(headers: Sequence[str], rows: List[Sequence[object]],
                 title: str = "") -> str:
    """Render an ASCII table (benchmark harness output)."""
    cols = len(headers)
    str_rows = [[f"{v:.4g}" if isinstance(v, float) else str(v) for v in row]
                for row in rows]
    widths = [max(len(headers[c]), *(len(r[c]) for r in str_rows))
              if str_rows else len(headers[c]) for c in range(cols)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(cols)))
    return "\n".join(lines)
