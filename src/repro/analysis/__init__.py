"""Analysis: experiment runners and table/figure builders.

Each ``figN_*`` function in :mod:`repro.analysis.figures` regenerates the
data series behind one figure of the paper's evaluation; the benchmark
harness in ``benchmarks/`` prints them next to the paper's reported
values.
"""

from repro.analysis.figures import (
    fig8_prim_applications,
    fig9_checksum_sensitivity,
    fig10_index_search,
    fig11_c_enhancement,
    fig12_driver_breakdown,
    fig13_wrank_steps,
    fig14_nw_ablation,
    fig15_parallel_ranks,
    fig16_request_times,
)
from repro.analysis.fleet import (
    FleetSummary,
    summarize,
    sweep_policies,
)
from repro.analysis.report import format_table, PAPER_CLAIMS

__all__ = [
    "FleetSummary",
    "summarize",
    "sweep_policies",
    "fig8_prim_applications",
    "fig9_checksum_sensitivity",
    "fig10_index_search",
    "fig11_c_enhancement",
    "fig12_driver_breakdown",
    "fig13_wrank_steps",
    "fig14_nw_ablation",
    "fig15_parallel_ranks",
    "fig16_request_times",
    "format_table",
    "PAPER_CLAIMS",
]
