"""Rank-overcommit experiment (``repro.paging``, ``docs/paging.md``).

N tenants (VMs) share a host with M < N physical ranks, *holding* their
rank allocations concurrently while their operations interleave — the
workload shape that actually exercises swapping, unlike back-to-back
sessions whose allocations never coexist.  Each tenant runs rounds of a
hand-rolled Vector Addition (push inputs, launch, read outputs, verify)
on a DPU set it keeps open across all rounds.

Four arms run the identical schedule:

- **reference**: a host with N physical ranks — no overcommit; its
  per-tenant output digests are the bit-identity ground truth;
- **denial**: M physical ranks, no oversubscription tier — overflow
  tenants are refused at allocation time and complete zero rounds (the
  paper's stock behaviour);
- **emulation**: M physical ranks with the Section 7 software-emulation
  fallback — overflow tenants run, but ~20x slower;
- **paging**: M physical ranks with :class:`~repro.paging.config.\
PagingConfig` — every tenant gets a full-speed virtual rank and the
  pager swaps rank state through the frames at launch/transfer
  boundaries.

The quantities under study: aggregate round throughput, round-latency
distribution (p99 foremost), swap traffic, and — the correctness bar —
that every arm's tenant outputs are bit-identical to the reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.figures import machine_config
from repro.analysis.fleet import percentile
from repro.analysis.report import format_table
from repro.apps.prim.va import VaProgram
from repro.core import VPim
from repro.errors import ManagerError
from repro.paging.config import PagingConfig
from repro.sdk.dpu_set import DpuSet
from repro.virt.digest import content_digest

#: Arm labels, in presentation order.
ARMS = ("reference", "denial", "emulation", "paging")


class _Tenant:
    """One VM holding a DPU set open across interleaved VA rounds."""

    def __init__(self, name: str, session, nr_dpus: int,
                 n_elements: int, seed: int) -> None:
        if n_elements % nr_dpus != 0:
            raise ValueError(
                f"n_elements ({n_elements}) must divide evenly across "
                f"{nr_dpus} DPUs")
        self.name = name
        self.session = session
        self.nr_dpus = nr_dpus
        self.n_elements = n_elements
        self.rng = np.random.default_rng(seed)
        self.denied = False
        self.round_latencies: List[float] = []
        self.dpus: Optional[DpuSet] = None
        self._round_digests: List[int] = []
        per_dpu = n_elements // nr_dpus
        self._per_dpu = per_dpu
        self._max_bytes = per_dpu * 4
        self._b_off = self._max_bytes
        self._c_off = 2 * self._max_bytes

    def open(self) -> bool:
        """Allocate the rank and load the kernel; ``False`` = denied."""
        try:
            self.dpus = DpuSet(self.session.transport, self.nr_dpus)
        except ManagerError:
            self.denied = True
            return False
        self.dpus.load(VaProgram())
        count = np.array([self._per_dpu], np.uint32)
        self.dpus.push_to("n_elems", 0, [count] * self.nr_dpus)
        self.dpus.broadcast_to("b_offset", 0,
                               np.array([self._b_off], np.uint32))
        self.dpus.broadcast_to("c_offset", 0,
                               np.array([self._c_off], np.uint32))
        return True

    def run_round(self, clock) -> None:
        """One VA round: push fresh inputs, launch, read, verify."""
        assert self.dpus is not None
        a = self.rng.integers(-(1 << 20), 1 << 20, self.n_elements,
                              dtype=np.int32)
        b = self.rng.integers(-(1 << 20), 1 << 20, self.n_elements,
                              dtype=np.int32)
        n = self._per_dpu
        start = clock.now
        self.dpus.push_to_mram(0, [a[i * n:(i + 1) * n]
                                   for i in range(self.nr_dpus)])
        self.dpus.push_to_mram(self._b_off, [b[i * n:(i + 1) * n]
                                             for i in range(self.nr_dpus)])
        self.dpus.launch()
        parts = [buf.view(np.int32)
                 for buf in self.dpus.push_from_mram(self._c_off,
                                                     self._max_bytes)]
        self.round_latencies.append(clock.now - start)
        out = np.concatenate(parts)
        expected = a + b
        if not np.array_equal(out, expected):
            raise AssertionError(
                f"{self.name}: round {len(self.round_latencies)} output "
                "mismatch — rank state was corrupted across a swap")
        self._round_digests.append(content_digest(out))

    def close(self) -> None:
        if self.dpus is not None:
            self.dpus.free()
            self.dpus = None

    @property
    def output_digest(self) -> int:
        """One digest over every round's verified output, in order."""
        return content_digest(np.array(self._round_digests, dtype=np.uint64))


@dataclass
class ArmResult:
    """One arm of the overcommit experiment."""

    label: str
    tenants: int
    admitted: int
    rounds_completed: int = 0
    round_latencies: List[float] = field(default_factory=list)
    #: The interleaved-rounds phase only — the steady state under study.
    #: Setup (allocation, program load, denial retries) is ``setup_s``:
    #: it is identical across the overcommit arms up to the manager's
    #: fixed allocation cost and would otherwise swamp short runs.
    makespan_s: float = 0.0
    setup_s: float = 0.0
    #: Per-tenant digest over all verified round outputs.
    digests: Dict[str, int] = field(default_factory=dict)
    # Paging traffic (zero for the non-paging arms).
    swap_in_bytes: int = 0
    swap_out_bytes: int = 0
    demand_faults: int = 0
    predictive_faults: int = 0
    evictions: int = 0

    @property
    def p99_s(self) -> float:
        return percentile(self.round_latencies, 99)

    @property
    def p50_s(self) -> float:
        return percentile(self.round_latencies, 50)

    @property
    def mean_s(self) -> float:
        lat = self.round_latencies
        return sum(lat) / len(lat) if lat else 0.0

    @property
    def throughput_per_s(self) -> float:
        """Schedule goodput: completed rounds per simulated second over
        the whole arm (setup + rounds).  Counting only the steady state
        would flatter hard denial, whose refused tenants complete
        nothing at all; goodput charges it for both the retry storm and
        the missing half of the schedule."""
        total = self.setup_s + self.makespan_s
        if total <= 0:
            return 0.0
        return self.rounds_completed / total

    @property
    def steady_throughput_per_s(self) -> float:
        """Completed rounds per second of the interleaved-rounds phase."""
        if self.makespan_s <= 0:
            return 0.0
        return self.rounds_completed / self.makespan_s

    @property
    def swap_bytes(self) -> int:
        return self.swap_in_bytes + self.swap_out_bytes


@dataclass
class OvercommitResult:
    """All four arms plus the derived scorecard."""

    tenants: int
    physical_ranks: int
    overcommit_ratio: float
    arms: Dict[str, ArmResult] = field(default_factory=dict)

    @property
    def reference(self) -> ArmResult:
        return self.arms["reference"]

    def identical_to_reference(self, label: str) -> bool:
        """True when every admitted tenant of ``label`` produced outputs
        bit-identical to the same tenant on the non-overcommitted host."""
        arm = self.arms[label]
        if not arm.digests:
            return False
        return all(self.reference.digests.get(name) == digest
                   for name, digest in arm.digests.items())

    @property
    def paging_vs_emulation(self) -> float:
        """Aggregate-throughput advantage of paging over emulation."""
        emu = self.arms["emulation"].throughput_per_s
        if emu <= 0:
            return float("inf")
        return self.arms["paging"].throughput_per_s / emu

    @property
    def paging_vs_denial(self) -> float:
        den = self.arms["denial"].throughput_per_s
        if den <= 0:
            return float("inf")
        return self.arms["paging"].throughput_per_s / den


def _arm_vpim(label: str, tenants: int, physical_ranks: int,
              dpus_per_rank: int, overcommit_ratio: float) -> VPim:
    if label == "reference":
        return VPim(machine_config(tenants, dpus_per_rank=dpus_per_rank))
    config = machine_config(physical_ranks, dpus_per_rank=dpus_per_rank)
    if label == "denial":
        return VPim(config)
    if label == "emulation":
        return VPim(config, oversubscription=True)
    if label == "paging":
        return VPim(config, paging=PagingConfig(
            overcommit_ratio=overcommit_ratio))
    raise ValueError(f"unknown arm {label!r}")


def _run_arm(label: str, tenants: int, physical_ranks: int,
             dpus_per_rank: int, rounds: int, n_elements: int,
             overcommit_ratio: float, on_vpim=None) -> ArmResult:
    """One arm: boot N VMs, open all DPU sets, interleave rounds."""
    vpim = _arm_vpim(label, tenants, physical_ranks, dpus_per_rank,
                     overcommit_ratio)
    if on_vpim is not None:
        on_vpim(label, vpim)
    crew = [
        _Tenant(f"tenant-{i}",
                vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30),
                nr_dpus=dpus_per_rank, n_elements=n_elements, seed=1000 + i)
        for i in range(tenants)
    ]
    arm = ArmResult(label=label, tenants=tenants, admitted=0)
    setup_start = vpim.clock.now
    for tenant in crew:
        if tenant.open():
            arm.admitted += 1
    active = [t for t in crew if not t.denied]
    arm.setup_s = vpim.clock.now - setup_start
    start = vpim.clock.now
    for _ in range(rounds):
        for tenant in active:
            tenant.run_round(vpim.clock)
    arm.makespan_s = vpim.clock.now - start
    for tenant in active:
        tenant.close()

    for tenant in active:
        arm.round_latencies.extend(tenant.round_latencies)
        arm.rounds_completed += len(tenant.round_latencies)
        arm.digests[tenant.name] = tenant.output_digest

    pager = vpim.manager.pager
    if pager is not None:
        arm.swap_in_bytes = pager.stats.swap_in_bytes
        arm.swap_out_bytes = pager.stats.swap_out_bytes
        arm.demand_faults = pager.stats.demand_faults
        arm.predictive_faults = pager.stats.predictive_faults
        arm.evictions = pager.stats.evictions
    return arm


def run_overcommit(tenants: int = 4, physical_ranks: int = 2,
                   dpus_per_rank: int = 8, rounds: int = 12,
                   n_elements: int = 1 << 16,
                   overcommit_ratio: float = 2.0,
                   on_vpim=None) -> OvercommitResult:
    """The full experiment: the same schedule under all four arms.

    ``on_vpim(label, vpim)``, when given, runs right after each arm's
    machine is built — the telemetry pipeline's attachment seam.
    """
    if tenants > int(physical_ranks * overcommit_ratio):
        raise ValueError(
            f"{tenants} tenants exceed the paging arm's virtual capacity "
            f"({physical_ranks} x {overcommit_ratio})")
    result = OvercommitResult(tenants=tenants, physical_ranks=physical_ranks,
                              overcommit_ratio=overcommit_ratio)
    for label in ARMS:
        result.arms[label] = _run_arm(
            label, tenants, physical_ranks, dpus_per_rank, rounds,
            n_elements, overcommit_ratio, on_vpim=on_vpim)
    return result


def overcommit_table(result: OvercommitResult) -> str:
    """Human-readable scorecard (the CLI demo and bench report body)."""
    rows = []
    for label in ARMS:
        arm = result.arms[label]
        identical = ("yes" if result.identical_to_reference(label)
                     else "NO")
        rows.append((
            label,
            f"{arm.admitted}/{arm.tenants}",
            str(arm.rounds_completed),
            f"{arm.p50_s * 1e3:.2f}",
            f"{arm.p99_s * 1e3:.2f}",
            f"{arm.throughput_per_s:.1f}",
            f"{arm.swap_bytes >> 10}",
            identical,
        ))
    table = format_table(
        ["arm", "admitted", "rounds", "p50 ms", "p99 ms", "rounds/s",
         "swap KiB", "bit-identical"],
        rows,
        title=(f"Rank overcommit: {result.tenants} tenants on "
               f"{result.physical_ranks} ranks "
               f"({result.overcommit_ratio:g}x)"))
    return (f"{table}\n\n"
            f"paging vs emulation throughput: "
            f"{result.paging_vs_emulation:.1f}x   "
            f"paging vs denial: {result.paging_vs_denial:.1f}x")
