"""Experiment runners: one function per evaluation figure.

Every function takes a ``profile`` ("test" for CI-sized runs, "bench"
for the benchmark harness) selecting workload sizes, and returns plain
data structures the benchmarks print and the shape tests assert on.

A fresh machine/VPim is built per run so experiments never inherit rank
state (a released rank sits in NANA for ~600 ms of simulated time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.trace import Tracer
from repro.apps.micro.checksum import Checksum
from repro.apps.micro.index_search import IndexSearch
from repro.apps.prim.nw import NeedlemanWunsch
from repro.apps.registry import PRIM_APPS, app_by_short_name
from repro.config import MachineConfig, RankConfig
from repro.core import VPim
from repro.core.results import ExecutionReport
from repro.observability import MetricsRegistry, SpanRecorder
from repro.sdk.dpu_set import DpuSet
from repro.workloads.wikipedia import SyntheticCorpus


def machine_config(nr_ranks: int, dpus_per_rank: int = 64,
                   first_rank_dpus: Optional[int] = None) -> MachineConfig:
    """Build a machine; ``first_rank_dpus`` models the testbed's 60-DPU rank."""
    ranks = []
    for i in range(nr_ranks):
        n = first_rank_dpus if (i == 0 and first_rank_dpus) else dpus_per_rank
        ranks.append(RankConfig(i, n))
    return MachineConfig(host_cores=16, host_dram_bytes=16 << 30, ranks=ranks)


def machine_for_dpus(nr_dpus: int) -> MachineConfig:
    """Smallest whole-rank machine covering ``nr_dpus``, paper-style.

    60 DPUs lands on the testbed's first rank; 480 uses all 8 ranks
    (rank 0 with 60 functional DPUs), matching Section 5.1.
    """
    if nr_dpus <= 60:
        return machine_config(1, dpus_per_rank=nr_dpus)
    if nr_dpus == 480:
        return machine_config(8, dpus_per_rank=60)
    nr_ranks = -(-nr_dpus // 64)
    return machine_config(nr_ranks)


#: Workload sizes per profile.  "test" keeps CI fast; "bench" preserves
#: the paper's operation-count patterns at tractable Python scale.
SIZE_PROFILES: Dict[str, Dict[str, dict]] = {
    "test": {
        "VA": dict(n_elements=1 << 15),
        "GEMV": dict(n_rows=512, n_cols=128),
        "SpMV": dict(n_rows=512, n_cols=256),
        "SEL": dict(n_elements=1 << 15),
        "UNI": dict(n_elements=1 << 15),
        "BS": dict(n_elements=1 << 15, n_queries=1 << 10),
        "TS": dict(n_points=1 << 12, query_len=32),
        "BFS": dict(n_vertices=1 << 10),
        "MLP": dict(layer_sizes=(128, 128, 128, 64)),
        "NW": dict(seq_len=256, block_size=32, chunk_bytes=64),
        "HST-S": dict(n_pixels=1 << 15),
        "HST-L": dict(n_pixels=1 << 15, n_bins=512),
        "RED": dict(n_elements=1 << 15),
        "SCAN-SSA": dict(n_elements=1 << 15),
        "SCAN-RSS": dict(n_elements=1 << 15),
        "TRNS": dict(n_rows=128, n_cols=128, tile_dim=16),
    },
    # The bench sizes keep the paper's op-count patterns while being big
    # enough that fixed virtualization costs (one 64 KB/DPU prefetch
    # refill is ~30 MB at 480 DPUs) relate to total work roughly as at
    # the paper's GB scale.
    "bench": {
        "VA": dict(n_elements=1 << 24),
        "GEMV": dict(n_rows=65536, n_cols=512),
        "SpMV": dict(n_rows=16384, n_cols=32768, nnz_per_row=16),
        "SEL": dict(n_elements=1 << 24),
        "UNI": dict(n_elements=1 << 24),
        "BS": dict(n_elements=1 << 22, n_queries=1 << 17),
        "TS": dict(n_points=1 << 20, query_len=64),
        # Bitmap of 16 KB: big enough that the prefetch refill (64 KB)
        # inflates Inter-DPU by a few-x, as the paper's ~3x, not by orders
        # of magnitude.
        "BFS": dict(n_vertices=1 << 17, avg_degree=4),
        "MLP": dict(layer_sizes=(4096, 4096, 4096, 1024)),
        "NW": dict(seq_len=1024, block_size=64),
        "HST-S": dict(n_pixels=1 << 24),
        "HST-L": dict(n_pixels=1 << 24, n_bins=1024),
        "RED": dict(n_elements=1 << 24),
        "SCAN-SSA": dict(n_elements=1 << 22),
        "SCAN-RSS": dict(n_elements=1 << 22),
        "TRNS": dict(n_rows=1024, n_cols=1024, tile_dim=16),
    },
}


@dataclass
class ComparisonRun:
    """Native-vs-vPIM pair for one (app, configuration) point."""

    app: str
    nr_dpus: int
    native: ExecutionReport
    vpim: ExecutionReport
    label: str = "vPIM"

    @property
    def overhead(self) -> float:
        return self.vpim.overhead_vs(self.native)

    def segment_overhead(self, segment: str) -> Optional[float]:
        return self.vpim.segment_overhead_vs(self.native, segment)


def run_app(short_name: str, nr_dpus: int, mode: str = "native",
            profile: str = "test", preset: Optional[str] = None,
            config: Optional[MachineConfig] = None,
            **extra_params) -> ExecutionReport:
    """Run one application on a fresh machine; returns its report."""
    cfg = config or machine_for_dpus(nr_dpus)
    vpim = VPim(cfg)
    params = dict(SIZE_PROFILES[profile].get(short_name, {}))
    params.update(extra_params)
    app = app_by_short_name(short_name).cls(nr_dpus=nr_dpus, **params)
    if mode == "native":
        session = vpim.native_session()
    else:
        session = vpim.vm_session(nr_vupmem=cfg.nr_ranks,
                                  preset_name=preset)
    return session.run(app)


def run_app_instrumented(
        short_name: str, nr_dpus: int, mode: str = "vm",
        profile: str = "test", preset: Optional[str] = None,
        config: Optional[MachineConfig] = None,
        **extra_params) -> Tuple[ExecutionReport, MetricsRegistry, Tracer]:
    """Like :func:`run_app`, but returns the full observability bundle.

    One run yields three artifacts: the :class:`ExecutionReport`, the
    machine's :class:`MetricsRegistry` (export with
    :func:`repro.observability.render_prometheus`), and a :class:`Tracer`
    whose events were mirrored into the ``repro_trace_*`` metrics — the
    ``repro metrics`` CLI subcommand is a thin wrapper over this.
    """
    cfg = config or machine_for_dpus(nr_dpus)
    vpim = VPim(cfg)
    registry = vpim.machine.metrics
    params = dict(SIZE_PROFILES[profile].get(short_name, {}))
    params.update(extra_params)
    app = app_by_short_name(short_name).cls(nr_dpus=nr_dpus, **params)
    if mode == "native":
        session = vpim.native_session()
    else:
        session = vpim.vm_session(nr_vupmem=cfg.nr_ranks,
                                  preset_name=preset)
    tracer = Tracer(registry=registry)
    session.transport.profiler.tracer = tracer
    report = session.run(app)
    return report, registry, tracer


def run_app_traced(
        short_name: str, nr_dpus: int, mode: str = "vm",
        profile: str = "test", preset: Optional[str] = None,
        config: Optional[MachineConfig] = None,
        sample_rate: float = 1.0,
        on_vpim=None,
        **extra_params) -> Tuple[ExecutionReport, MetricsRegistry,
                                 SpanRecorder]:
    """Like :func:`run_app`, but under request-scoped distributed tracing.

    Returns the report, the machine registry (now including the
    ``repro_span_*`` series) and the machine's
    :class:`~repro.observability.spans.SpanRecorder`, whose retained
    traces feed :func:`repro.observability.critical_path` and the
    Perfetto export — the ``repro trace`` CLI subcommand is a thin
    wrapper over this.
    """
    cfg = config or machine_for_dpus(nr_dpus)
    vpim = VPim(cfg)
    recorder = vpim.spans
    # The machine builds its recorder always-on; the head-sampling rate
    # only matters from the next root span, so setting it here is safe.
    recorder.sample_rate = sample_rate
    if on_vpim is not None:
        # Telemetry attachment seam (``repro monitor``): runs before the
        # session exists, so a scrape store sees the whole run.
        on_vpim(vpim)
    params = dict(SIZE_PROFILES[profile].get(short_name, {}))
    params.update(extra_params)
    app = app_by_short_name(short_name).cls(nr_dpus=nr_dpus, **params)
    if mode == "native":
        session = vpim.native_session()
    else:
        session = vpim.vm_session(nr_vupmem=cfg.nr_ranks,
                                  preset_name=preset)
    report = session.run(app)
    return report, vpim.machine.metrics, recorder


def compare_app(short_name: str, nr_dpus: int, profile: str = "test",
                preset: Optional[str] = None, **extra) -> ComparisonRun:
    native = run_app(short_name, nr_dpus, "native", profile, **extra)
    vpim = run_app(short_name, nr_dpus, "vm", profile, preset, **extra)
    return ComparisonRun(app=short_name, nr_dpus=nr_dpus, native=native,
                         vpim=vpim, label=preset or "vPIM")


# ---------------------------------------------------------------------------
# Fig. 8 — PrIM applications, native vs vPIM, 60 and 480 DPUs
# ---------------------------------------------------------------------------

def fig8_prim_applications(profile: str = "test",
                           dpu_counts: Sequence[int] = (60, 480),
                           apps: Optional[Sequence[str]] = None,
                           ) -> List[ComparisonRun]:
    names = list(apps) if apps else [info.short_name for info in PRIM_APPS]
    runs = []
    for nr_dpus in dpu_counts:
        for name in names:
            runs.append(compare_app(name, nr_dpus, profile))
    return runs


# ---------------------------------------------------------------------------
# Fig. 9 — checksum sensitivity: vCPUs, #DPUs, transfer size
# ---------------------------------------------------------------------------

@dataclass
class ChecksumPoint:
    x: object
    native_s: float
    vpim_s: float

    @property
    def overhead(self) -> float:
        return self.vpim_s / self.native_s


def _checksum_pair(nr_dpus: int, file_mb: float, scale: int,
                   vcpus: int = 16) -> ChecksumPoint:
    cfg = machine_for_dpus(nr_dpus)
    nat = VPim(cfg).native_session().run(
        Checksum(nr_dpus=nr_dpus, file_mb=file_mb, scale=scale))
    vr = VPim(cfg).vm_session(nr_vupmem=cfg.nr_ranks, vcpus=vcpus).run(
        Checksum(nr_dpus=nr_dpus, file_mb=file_mb, scale=scale))
    return ChecksumPoint(x=None, native_s=nat.segments_total,
                         vpim_s=vr.segments_total)


def fig9_checksum_sensitivity(scale: int = 32) -> Dict[str, List[ChecksumPoint]]:
    """The three sweeps of Fig. 9 (sizes are nominal MB, scaled down)."""
    out: Dict[str, List[ChecksumPoint]] = {"vcpus": [], "dpus": [], "size": []}
    for vcpus in (2, 4, 8, 16):
        point = _checksum_pair(60, 60, scale, vcpus=vcpus)
        point.x = vcpus
        out["vcpus"].append(point)
    for nr_dpus in (1, 8, 16, 60):
        point = _checksum_pair(nr_dpus, 60, scale)
        point.x = nr_dpus
        out["dpus"].append(point)
    for mb in (8, 20, 40, 60):
        point = _checksum_pair(60, mb, scale)
        point.x = mb
        out["size"].append(point)
    return out


# ---------------------------------------------------------------------------
# Fig. 10 — Index Search vs #DPUs
# ---------------------------------------------------------------------------

def fig10_index_search(dpu_counts: Sequence[int] = (1, 8, 16, 60, 128),
                       corpus: Optional[SyntheticCorpus] = None,
                       ) -> List[ChecksumPoint]:
    corpus = corpus or SyntheticCorpus(nr_documents=2000,
                                       vocabulary_size=8000, seed=7)
    points = []
    for n in dpu_counts:
        cfg = machine_for_dpus(n)
        nat = VPim(cfg).native_session().run(IndexSearch(nr_dpus=n,
                                                         corpus=corpus))
        vr = VPim(cfg).vm_session(nr_vupmem=cfg.nr_ranks).run(
            IndexSearch(nr_dpus=n, corpus=corpus))
        point = ChecksumPoint(x=n, native_s=nat.segments_total,
                              vpim_s=vr.segments_total)
        points.append(point)
    return points


# ---------------------------------------------------------------------------
# Fig. 11 — C enhancement: vPIM-rust vs vPIM-C vs native (checksum)
# ---------------------------------------------------------------------------

@dataclass
class AblationPoint:
    x: object
    native_s: float
    variants: Dict[str, float] = field(default_factory=dict)


def fig11_c_enhancement(scale: int = 32) -> Dict[str, List[AblationPoint]]:
    out: Dict[str, List[AblationPoint]] = {"dpus": [], "size": []}

    def point(nr_dpus: int, mb: float) -> AblationPoint:
        cfg = machine_for_dpus(nr_dpus)
        def app():
            return Checksum(nr_dpus=nr_dpus, file_mb=mb, scale=scale)
        nat = VPim(cfg).native_session().run(app())
        p = AblationPoint(x=None, native_s=nat.segments_total)
        for preset in ("vPIM-rust", "vPIM-C"):
            rep = VPim(cfg).vm_session(nr_vupmem=cfg.nr_ranks,
                                       preset_name=preset).run(app())
            p.variants[preset] = rep.segments_total
        return p

    for nr_dpus in (1, 16, 60):
        p = point(nr_dpus, 60)
        p.x = nr_dpus
        out["dpus"].append(p)
    for mb in (8, 40, 60):
        p = point(60, mb)
        p.x = mb
        out["size"].append(p)
    return out


# ---------------------------------------------------------------------------
# Figs. 12/13 — driver-centric breakdowns (checksum, 60 DPUs, 8 MB)
# ---------------------------------------------------------------------------

@dataclass
class DriverBreakdown:
    mode: str
    ops: Dict[str, Tuple[int, float]]        #: kind -> (count, seconds)
    wrank_steps: Dict[str, float]


def fig12_fig13_breakdowns(scale: int = 32) -> List[DriverBreakdown]:
    results = []
    for preset in ("vPIM-rust", "vPIM-C"):
        cfg = machine_for_dpus(60)
        rep = VPim(cfg).vm_session(nr_vupmem=1, preset_name=preset).run(
            Checksum(nr_dpus=60, file_mb=8, scale=scale))
        ops = {kind: (stats.count, stats.time)
               for kind, stats in rep.profile.driver.items()}
        results.append(DriverBreakdown(mode=preset, ops=ops,
                                       wrank_steps=dict(rep.profile.wrank_steps)))
    return results


def fig12_driver_breakdown(scale: int = 32) -> List[DriverBreakdown]:
    return fig12_fig13_breakdowns(scale)


def fig13_wrank_steps(scale: int = 32) -> List[DriverBreakdown]:
    return fig12_fig13_breakdowns(scale)


# ---------------------------------------------------------------------------
# Fig. 14 — NW optimization ablation
# ---------------------------------------------------------------------------

@dataclass
class NwAblationRow:
    mode: str
    total_s: float
    segments: Dict[str, float]
    messages: int
    batched: int
    cache_hits: int
    cache_refills: int


def fig14_nw_ablation(profile: str = "test",
                      nr_dpus: int = 16) -> List[NwAblationRow]:
    params = SIZE_PROFILES[profile]["NW"]
    rows = []

    def build() -> NeedlemanWunsch:
        return NeedlemanWunsch(nr_dpus=nr_dpus, **params)

    cfg = machine_for_dpus(nr_dpus)
    nat = VPim(cfg).native_session().run(build())
    rows.append(NwAblationRow("native", nat.segments_total,
                              nat.segments, 0, 0, 0, 0))
    for preset in ("vPIM-C", "vPIM+P", "vPIM+B", "vPIM+PB"):
        rep = VPim(cfg).vm_session(nr_vupmem=cfg.nr_ranks,
                                   preset_name=preset).run(build())
        m = rep.profile.messages
        rows.append(NwAblationRow(preset, rep.segments_total, rep.segments,
                                  m.requests, m.batched_writes,
                                  m.cache_hits, m.cache_refills))
    return rows


# ---------------------------------------------------------------------------
# Figs. 15/16 — parallel operation handling on multiple ranks
# ---------------------------------------------------------------------------

@dataclass
class ParallelPoint:
    nr_ranks: int
    seq_total: float
    par_total: float
    seq_write: float
    par_write: float

    @property
    def app_speedup(self) -> float:
        return self.seq_total / self.par_total

    @property
    def write_speedup(self) -> float:
        return self.seq_write / self.par_write


def fig15_parallel_ranks(rank_counts: Sequence[int] = (2, 4, 8),
                         file_mb: float = 60, scale: int = 64,
                         ) -> List[ParallelPoint]:
    points = []
    for nr in rank_counts:
        nr_dpus = nr * 64
        results = {}
        for preset in ("vPIM-Seq", "vPIM"):
            cfg = machine_config(nr)
            rep = VPim(cfg).vm_session(nr_vupmem=nr, preset_name=preset).run(
                Checksum(nr_dpus=nr_dpus, file_mb=file_mb, scale=scale))
            results[preset] = rep
        points.append(ParallelPoint(
            nr_ranks=nr,
            seq_total=results["vPIM-Seq"].segments_total,
            par_total=results["vPIM"].segments_total,
            # Write wall time is the CPU-DPU segment (the one write op);
            # summed per-request durations would hide the overlap.
            seq_write=results["vPIM-Seq"].segments["CPU-DPU"],
            par_write=results["vPIM"].segments["CPU-DPU"],
        ))
    return points


def fig16_request_times(nr_ranks: int = 8, mb_per_dpu: float = 1.0,
                        ) -> Dict[str, List[Tuple[int, float]]]:
    """Per-rank completion times of one write spanning all ranks."""
    out: Dict[str, List[Tuple[int, float]]] = {}
    data_bytes = int(mb_per_dpu * (1 << 20))
    rng = np.random.default_rng(0)
    data = rng.integers(0, 255, data_bytes, dtype=np.uint8).astype(np.uint8)
    for preset in ("vPIM-Seq", "vPIM"):
        cfg = machine_config(nr_ranks)
        session = VPim(cfg).vm_session(nr_vupmem=nr_ranks, preset_name=preset)
        with DpuSet(session.transport, nr_ranks * 64) as dpus:
            dpus.push_to_mram(0, [data] * (nr_ranks * 64))
            out[preset] = list(dpus.last_completions)
    return out
