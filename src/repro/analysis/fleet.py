"""Fleet-scenario analysis: summaries and placement-policy sweeps.

Turns raw :class:`~repro.cluster.loadgen.ScenarioResult` runs into the
numbers the control plane is judged on — queue-wait percentiles,
rejection rate, throughput, utilization — and sweeps the placement
policies over seed batches so the benchmark compares distributions, not
single draws.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.loadgen import ScenarioConfig, ScenarioResult, run_scenario
from repro.observability.stats import percentile_nearest_rank


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for empty input.

    Delegates to the shared stats module; kept as a named wrapper because
    the CLI and the QoS analysis import it from here.
    """
    return percentile_nearest_rank(values, q)


@dataclass(frozen=True)
class FleetSummary:
    """The control-plane scorecard of one (or several pooled) runs."""

    policy: str
    submitted: int
    completed: int
    rejected: int
    rejection_rate: float
    mean_wait_s: float
    p50_wait_s: float
    p99_wait_s: float
    throughput_per_s: float        #: completed sessions per simulated second
    mean_utilization: float
    migrations: int
    hosts_drained: int


def summarize(result: ScenarioResult, cluster: Cluster) -> FleetSummary:
    """Score one scenario run."""
    return _pool(result.config.policy, [(result, cluster)])


def _pool(policy: str,
          runs: Sequence[Tuple[ScenarioResult, Cluster]]) -> FleetSummary:
    waits: List[float] = []
    submitted = completed = rejected = migrations = drained = 0
    makespan = rank_seconds = capacity_seconds = 0.0
    for result, cluster in runs:
        waits.extend(result.waits)
        submitted += result.submitted
        completed += result.completions
        rejected += result.rejected
        migrations += result.migrations
        drained += result.hosts_drained
        makespan += result.makespan_s
        rank_seconds += result.rank_seconds
        capacity_seconds += result.makespan_s * cluster.total_ranks
    return FleetSummary(
        policy=policy,
        submitted=submitted,
        completed=completed,
        rejected=rejected,
        rejection_rate=rejected / submitted if submitted else 0.0,
        mean_wait_s=sum(waits) / len(waits) if waits else 0.0,
        p50_wait_s=percentile(waits, 50),
        p99_wait_s=percentile(waits, 99),
        throughput_per_s=completed / makespan if makespan else 0.0,
        mean_utilization=(rank_seconds / capacity_seconds
                          if capacity_seconds else 0.0),
        migrations=migrations,
        hosts_drained=drained,
    )


def sweep_policies(base: ScenarioConfig,
                   policies: Sequence[str] = ("round_robin", "best_fit",
                                              "least_loaded"),
                   seeds: Sequence[int] = tuple(range(8)),
                   ) -> Dict[str, FleetSummary]:
    """Run every policy over the same seed batch; pooled summaries.

    Each (policy, seed) pair replays the *identical* arrival schedule —
    the seed fixes the workload, the policy only changes placement — so
    differences in the summary are attributable to the policy alone.
    """
    out: Dict[str, FleetSummary] = {}
    for policy in policies:
        runs = [run_scenario(replace(base, policy=policy, seed=seed))
                for seed in seeds]
        out[policy] = _pool(policy, runs)
    return out


def summary_rows(summaries: Dict[str, FleetSummary]) -> List[Tuple]:
    """Rows for :func:`repro.analysis.report.format_table`."""
    return [
        (s.policy, s.submitted, s.completed, f"{s.rejection_rate:.3f}",
         f"{s.mean_wait_s:.3f}", f"{s.p99_wait_s:.3f}",
         f"{s.throughput_per_s:.3f}", f"{s.mean_utilization:.3f}",
         s.migrations, s.hosts_drained)
        for s in summaries.values()
    ]


SUMMARY_HEADERS = ["policy", "subm", "done", "rej rate", "mean wait s",
                   "p99 wait s", "thru/s", "util", "migr", "drained"]
