"""Chaos-run scorecards: did the stack survive its fault plan?

Two drivers, mirroring the two blast radii:

- :func:`run_chaos` — one host, one VM, a stream of sessions under an
  armed :class:`~repro.faults.FaultInjector`: rank/transport/backend
  faults fire mid-workload and the recovery paths (frontend retries,
  session reruns on replacement ranks) either absorb them or lose the
  session.
- :func:`run_cluster_chaos` — a fleet scenario with host crashes: the
  scheduler evicts and re-places every tenant of a dead host.

Both return the injector's canonical fired-fault timeline (and its
sha256 digest) plus a ``repro_fault_*`` metric snapshot, which is the
replay contract ``benchmarks/bench_chaos_recovery.py`` asserts: same
seed, same workload -> byte-identical timeline and identical snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import MachineConfig, RankConfig
from repro.core.api import VPim
from repro.errors import ReproError
from repro.faults import FaultInjector, FaultKind, FaultPlan, run_with_recovery
from repro.observability.metrics import HistogramChild, MetricsRegistry

#: Metric families included in the recovery snapshot.
FAULT_METRICS: Tuple[str, ...] = (
    "repro_fault_injected_total",
    "repro_fault_detected_total",
    "repro_fault_recovered_total",
    "repro_fault_recovery_seconds",
    "repro_fault_sessions_lost_total",
    "repro_fault_retries_total",
    "repro_manager_allocation_retries_exhausted_total",
)

#: Fault kinds a single-host VM chaos run draws from by default.
DEFAULT_CHAOS_KINDS: Tuple[str, ...] = (
    "dpu_mram_bitflip",
    "dpu_kernel_fault",
    "rank_offline",
    "rank_degraded",
    "transport_corruption",
    "transport_stall",
    "backend_hang",
)


def fault_metric_snapshot(registries) -> Dict[str, float]:
    """Flatten the fault/recovery series of one or more registries.

    Keys are ``name{label=value,...}``; values are summed across
    registries (a fleet keeps per-host registries plus the control-plane
    one).  Histograms contribute their observation count under the plain
    key and their sum under ``<key>:sum`` so MTTR changes are caught.
    """
    if isinstance(registries, MetricsRegistry):
        registries = [registries]
    out: Dict[str, float] = {}
    for registry in registries:
        for name in FAULT_METRICS:
            if name not in registry:
                continue
            for labels, child in registry.get(name).samples():
                key = name + "{" + ",".join(
                    f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if isinstance(child, HistogramChild):
                    out[key] = out.get(key, 0.0) + child.count
                    out[key + ":sum"] = out.get(key + ":sum", 0.0) + child.sum
                else:
                    out[key] = out.get(key, 0.0) + child.value
    return out


# --------------------------------------------------------------------------
# Single host: sessions under fire
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ChaosConfig:
    """One reproducible single-host chaos run."""

    nr_ranks: int = 3
    dpus_per_rank: int = 8
    app: str = "VA"
    nr_sessions: int = 4
    seed: int = 0
    #: Expected fault events per simulated second over the horizon.
    fault_rate_per_s: float = 1.0
    horizon_s: float = 10.0
    kinds: Tuple[str, ...] = DEFAULT_CHAOS_KINDS
    #: Session-rerun budget per workload item.
    max_attempts: int = 4

    def validate(self) -> None:
        from repro.cluster.loadgen import APP_PARAMS
        if self.nr_ranks <= 0 or self.nr_sessions <= 0:
            raise ReproError("nr_ranks and nr_sessions must be positive")
        if self.app not in APP_PARAMS:
            raise ReproError(
                f"no chaos parameters for app {self.app!r}; "
                f"known: {sorted(APP_PARAMS)}")
        unknown = set(self.kinds) - {k.value for k in FaultKind}
        if unknown:
            raise ReproError(
                f"unknown fault kinds {sorted(unknown)}; "
                f"known: {sorted(k.value for k in FaultKind)}")


@dataclass
class ChaosResult:
    """Scorecard of one :func:`run_chaos` run."""

    config: ChaosConfig
    sessions_run: int = 0
    sessions_recovered: int = 0
    sessions_lost: int = 0
    total_attempts: int = 0
    faults_fired: int = 0
    makespan_s: float = 0.0
    timeline: str = ""
    timeline_digest: str = ""
    metric_snapshot: Dict[str, float] = field(default_factory=dict)

    @property
    def survival_rate(self) -> float:
        if self.sessions_run == 0:
            return 0.0
        return 1.0 - self.sessions_lost / self.sessions_run


def build_plan(config: ChaosConfig) -> FaultPlan:
    """The seeded plan a :class:`ChaosConfig` implies.

    Offline events are capped at ``nr_ranks - 1`` so the scenario stays
    winnable — there is always a replacement rank to recover onto.
    """
    kinds = tuple(FaultKind(name) for name in config.kinds)
    return FaultPlan.generate(
        seed=config.seed, horizon_s=config.horizon_s,
        rate_per_s=config.fault_rate_per_s, kinds=kinds,
        limits={FaultKind.RANK_OFFLINE: max(config.nr_ranks - 1, 0)})


def run_chaos(config: ChaosConfig = ChaosConfig(),
              plan: Optional[FaultPlan] = None,
              on_vpim=None) -> ChaosResult:
    """Run ``nr_sessions`` PrIM sessions on one VM while ``plan`` fires.

    Each session goes through
    :func:`~repro.faults.recovery.run_with_recovery`: transient faults
    are retried inside the frontend, hardware faults cause a rerun on a
    replacement rank, and only exhausted budgets count as lost.

    ``on_vpim``, when given, is called with the freshly built
    :class:`VPim` before any session runs — the telemetry pipeline's
    attachment seam (``repro monitor --scenario chaos``).
    """
    from repro.apps.registry import app_by_short_name
    from repro.cluster.loadgen import APP_PARAMS

    config.validate()
    if plan is None:
        plan = build_plan(config)
    machine_config = MachineConfig(
        host_cores=16, host_dram_bytes=8 << 30,
        ranks=[RankConfig(i, config.dpus_per_rank)
               for i in range(config.nr_ranks)])
    vpim = VPim(machine_config)
    if on_vpim is not None:
        on_vpim(vpim)
    injector = FaultInjector(plan, vpim.clock,
                             registry=vpim.machine.metrics)
    injector.arm_machine(vpim.machine, vpim.manager)
    session = vpim.vm_session(nr_vupmem=1)
    injector.arm_vm(session.vm)

    result = ChaosResult(config=config)
    params = dict(APP_PARAMS[config.app])
    spec = app_by_short_name(config.app)
    for i in range(config.nr_sessions):
        app = spec.cls(nr_dpus=config.dpus_per_rank,
                       seed=config.seed + i, **params)
        result.sessions_run += 1
        try:
            recovery = run_with_recovery(session, app,
                                         max_attempts=config.max_attempts)
        except ReproError:
            result.sessions_lost += 1
            continue
        result.total_attempts += recovery.attempts
        if recovery.recovered:
            result.sessions_recovered += 1
        if not recovery.verified:
            result.sessions_lost += 1

    result.faults_fired = len(injector.fired)
    result.makespan_s = vpim.clock.now
    result.timeline = injector.timeline()
    result.timeline_digest = injector.timeline_digest()
    result.metric_snapshot = fault_metric_snapshot(vpim.machine.metrics)
    return result


# --------------------------------------------------------------------------
# Fleet: host crashes under load
# --------------------------------------------------------------------------

@dataclass
class ClusterChaosResult:
    """Scorecard of one :func:`run_cluster_chaos` run."""

    crashed_hosts: List[str] = field(default_factory=list)
    evicted: int = 0
    completed: int = 0
    submitted: int = 0
    #: Admitted requests that never completed (the crash's real damage).
    sessions_lost: int = 0
    faults_fired: int = 0
    makespan_s: float = 0.0
    timeline: str = ""
    timeline_digest: str = ""
    metric_snapshot: Dict[str, float] = field(default_factory=dict)


def run_cluster_chaos(scenario, plan: FaultPlan,
                      drain_limit: int = 64) -> ClusterChaosResult:
    """Replay a fleet scenario while ``plan``'s host crashes fire.

    The injector arms every host's ranks and polls host-scope events at
    each load-generator event; a crash FAIL-lists the host's ranks and
    the scheduler requeues its tenants ahead of the queue.  After the
    scenario, any still-queued requests are drained onto surviving
    capacity (bounded by ``drain_limit`` placements) so a late crash
    cannot strand re-placements behind an empty event list.
    """
    from repro.cluster.loadgen import LoadGenerator

    generator = LoadGenerator(scenario)
    injector = FaultInjector(plan, generator.cluster.clock,
                             registry=generator.cluster.metrics)
    injector.arm_cluster(generator.cluster, generator.scheduler)
    crashed: List[str] = []
    evicted_total = [0]

    def deliver(gen) -> None:
        before = len(gen.scheduler.queue)
        crashed.extend(injector.fire_host_faults())
        evicted_total[0] += max(0, len(gen.scheduler.queue) - before)

    generator.on_event = deliver
    scenario_result = generator.run()

    # Post-scenario drain: re-place stragglers, complete them instantly.
    scheduler = generator.scheduler
    for _ in range(drain_limit):
        if not scheduler.queue:
            break
        placement = scheduler.try_place_next()
        if placement is None:
            break
        placement.acquire()
        record = generator._records[placement.request.request_id]
        record.outcome = "completed"
        record.host = placement.host.host_id
        scenario_result.completions += 1
        scheduler.release(placement)

    lost = sum(1 for record in scenario_result.records
               if record.outcome == "queued")
    registries = [generator.cluster.metrics] + [
        host.metrics for host in generator.cluster.hosts]
    return ClusterChaosResult(
        crashed_hosts=crashed,
        evicted=evicted_total[0],
        completed=scenario_result.completions,
        submitted=scenario_result.submitted,
        sessions_lost=lost,
        faults_fired=len(injector.fired),
        makespan_s=scenario_result.makespan_s,
        timeline=injector.timeline(),
        timeline_digest=injector.timeline_digest(),
        metric_snapshot=fault_metric_snapshot(registries),
    )


# --------------------------------------------------------------------------
# Report rows
# --------------------------------------------------------------------------

CHAOS_HEADERS = ["sessions", "recovered", "lost", "survival", "faults",
                 "attempts", "makespan s"]


def chaos_rows(result: ChaosResult) -> List[Tuple]:
    """Rows for :func:`repro.analysis.report.format_table`."""
    return [(result.sessions_run, result.sessions_recovered,
             result.sessions_lost, f"{result.survival_rate:.3f}",
             result.faults_fired, result.total_attempts,
             f"{result.makespan_s:.3f}")]


CLUSTER_CHAOS_HEADERS = ["subm", "done", "lost", "crashed", "evicted",
                         "faults", "makespan s"]


def cluster_chaos_rows(result: ClusterChaosResult) -> List[Tuple]:
    return [(result.submitted, result.completed, result.sessions_lost,
             ",".join(result.crashed_hosts) or "-", result.evicted,
             result.faults_fired, f"{result.makespan_s:.3f}")]
