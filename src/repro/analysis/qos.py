"""Noisy-neighbor isolation experiment (``repro.qos``, ``docs/qos.md``).

Two VMs share one host: a latency-sensitive *victim* running many small
Binary Search sessions, and a *noisy* tenant hammering the shared host
bus with large Vector Addition transfers.  The experiment runs the same
schedule twice:

- **QoS off** (``QosConfig(enforce=False)``): flows are registered (so
  contention is modeled) but the event loop serves kicks FIFO — every
  victim request can head-of-line block behind a whole in-flight bulk
  operation, and the bus steal is unweighted.
- **QoS on** (``enforce=True``): weighted-fair queueing caps the wait a
  request pays at one service quantum per busy neighbor, and the bus
  steal is weight-proportional.

The quantity under study is the victim's per-session latency
distribution (p99 foremost) and the aggregate throughput cost of
enforcing fairness — the classic isolation-vs-utilization trade, shown
here to be nearly free because fair queueing only reorders waits.

:func:`run_slo_demo` extends the experiment with the declarative SLO
layer: the victim declares a latency objective, the tracker measures
burn, and the enforcer actuates a weight boost mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.figures import machine_config
from repro.analysis.fleet import percentile
from repro.analysis.report import format_table
from repro.apps.prim.bs import BinarySearch
from repro.apps.prim.va import VectorAdd
from repro.core import VPim
from repro.qos.config import QosConfig
from repro.qos.slo import SloEnforcer, SloObjective, SloTracker
from repro.virt.opts import Optimization

#: The victim's small, latency-sensitive job (many tiny roundtrips).
VICTIM_PARAMS = dict(n_elements=1 << 12, n_queries=1 << 8)
#: The noisy tenant's bulk job (large transfers occupying the bus).
NOISY_PARAMS = dict(n_elements=1 << 21)
#: The noisy tenant's declared offered load and typical op occupancy —
#: a tenant that keeps the bus permanently busy with multi-ms transfers.
NOISY_DEMAND = 1.0
NOISY_MEAN_OP_S = 5e-3


@dataclass
class ArmResult:
    """One arm (QoS off or on) of the noisy-neighbor experiment."""

    enforce: bool
    victim_latencies: List[float] = field(default_factory=list)
    noisy_latencies: List[float] = field(default_factory=list)
    makespan_s: float = 0.0

    @property
    def victim_p99(self) -> float:
        return percentile(self.victim_latencies, 99)

    @property
    def victim_p50(self) -> float:
        return percentile(self.victim_latencies, 50)

    @property
    def victim_mean(self) -> float:
        lat = self.victim_latencies
        return sum(lat) / len(lat) if lat else 0.0

    @property
    def sessions(self) -> int:
        return len(self.victim_latencies) + len(self.noisy_latencies)

    @property
    def throughput_per_s(self) -> float:
        """Completed sessions (victim + noisy) per simulated second."""
        if self.makespan_s <= 0:
            return 0.0
        return self.sessions / self.makespan_s


@dataclass
class IsolationResult:
    """Both arms plus the derived isolation scorecard."""

    off: ArmResult
    on: ArmResult

    @property
    def p99_improvement(self) -> float:
        """How much QoS shrinks the victim's p99 (>1 = better)."""
        if self.on.victim_p99 <= 0:
            return float("inf")
        return self.off.victim_p99 / self.on.victim_p99

    @property
    def throughput_ratio(self) -> float:
        """Aggregate throughput with QoS on vs off (1.0 = free isolation)."""
        if self.off.throughput_per_s <= 0:
            return 0.0
        return self.on.throughput_per_s / self.off.throughput_per_s


def _run_arm(enforce: bool, sessions: int, dpus_per_rank: int,
             victim_weight: float = 1.0) -> ArmResult:
    """One arm: boot both VMs, interleave victim/noisy sessions."""
    vpim = VPim(machine_config(2, dpus_per_rank=dpus_per_rank))
    victim = vpim.vm_session(nr_vupmem=1, opts=Optimization(qos=QosConfig(
        weight=victim_weight, enforce=enforce, tenant="victim")))
    noisy = vpim.vm_session(nr_vupmem=1, opts=Optimization(qos=QosConfig(
        weight=1.0, enforce=enforce, tenant="noisy",
        demand=NOISY_DEMAND, mean_op_s=NOISY_MEAN_OP_S)))

    arm = ArmResult(enforce=enforce)
    start = vpim.clock.now
    for seed in range(sessions):
        rep = noisy.run(VectorAdd(nr_dpus=dpus_per_rank, seed=seed,
                                  **NOISY_PARAMS))
        assert rep.verified
        arm.noisy_latencies.append(rep.segments_total)
        rep = victim.run(BinarySearch(nr_dpus=dpus_per_rank, seed=seed,
                                      **VICTIM_PARAMS))
        assert rep.verified
        # Execution latency (the four app segments, what Fig. 8 plots):
        # allocation/load are constant per session and would only dilute
        # the quantity under study, the cross-VM interference.
        arm.victim_latencies.append(rep.segments_total)
    arm.makespan_s = vpim.clock.now - start
    return arm


def run_isolation(sessions: int = 12,
                  dpus_per_rank: int = 60) -> IsolationResult:
    """The full experiment: identical schedules, QoS off vs on."""
    return IsolationResult(
        off=_run_arm(False, sessions, dpus_per_rank),
        on=_run_arm(True, sessions, dpus_per_rank),
    )


def isolation_table(result: IsolationResult) -> str:
    """Human-readable scorecard (the CLI demo and bench report body)."""
    rows = []
    for label, arm in (("QoS off (FIFO)", result.off),
                       ("QoS on (WFQ)", result.on)):
        rows.append((
            label,
            f"{arm.victim_p50 * 1e3:.2f}",
            f"{arm.victim_p99 * 1e3:.2f}",
            f"{arm.victim_mean * 1e3:.2f}",
            f"{arm.throughput_per_s:.1f}",
        ))
    table = format_table(
        ["arm", "victim p50 ms", "victim p99 ms", "victim mean ms",
         "sessions/s"],
        rows, title="Noisy neighbor: victim session latency")
    return (f"{table}\n\n"
            f"victim p99 improvement: {result.p99_improvement:.1f}x   "
            f"aggregate throughput ratio (on/off): "
            f"{result.throughput_ratio:.2f}")


@dataclass
class SloDemoResult:
    """What the SLO walkthrough produced."""

    objective_p99_s: float
    burn_before: float
    burn_after: float
    weight_before: float
    weight_after: float
    actions: List[str] = field(default_factory=list)
    latencies_before: List[float] = field(default_factory=list)
    latencies_after: List[float] = field(default_factory=list)


def run_slo_demo(sessions: int = 8,
                 dpus_per_rank: int = 60,
                 objective_p99_s: float = 5e-3) -> SloDemoResult:
    """SLO enforcement end to end on one host.

    The victim starts at weight 1 under enforcement; its declared p99
    objective burns hot against the noisy neighbor, and the enforcer's
    first actuation boosts the victim's weight — visible as a burn-rate
    drop over the following sessions.
    """
    vpim = VPim(machine_config(2, dpus_per_rank=dpus_per_rank))
    victim = vpim.vm_session(nr_vupmem=1, opts=Optimization(qos=QosConfig(
        weight=1.0, enforce=True, tenant="victim")))
    noisy = vpim.vm_session(nr_vupmem=1, opts=Optimization(qos=QosConfig(
        weight=1.0, enforce=True, tenant="noisy",
        demand=NOISY_DEMAND, mean_op_s=NOISY_MEAN_OP_S,
        bytes_per_s=512 << 20)))

    objective = SloObjective(tenant="victim", latency_p99_s=objective_p99_s,
                             window=sessions)
    tracker = SloTracker(metrics=vpim.machine.metrics)
    enforcer = SloEnforcer(tracker, (objective,),
                           metrics=vpim.machine.metrics)
    victim_flow = victim.vm.qos_flow
    noisy_flow = noisy.vm.qos_flow
    enforcer.bind("victim", victim_flow, host_id="host-0")
    enforcer.bind("noisy", noisy_flow, host_id="host-0")

    demo = SloDemoResult(objective_p99_s=objective_p99_s,
                         burn_before=0.0, burn_after=0.0,
                         weight_before=victim_flow.weight,
                         weight_after=victim_flow.weight)

    def one_round(sink: List[float], seed: int) -> None:
        rep = noisy.run(VectorAdd(nr_dpus=dpus_per_rank, seed=seed,
                                  **NOISY_PARAMS))
        assert rep.verified
        rep = victim.run(BinarySearch(nr_dpus=dpus_per_rank, seed=seed,
                                      **VICTIM_PARAMS))
        assert rep.verified
        sink.append(rep.segments_total)
        tracker.observe_session("victim", rep.segments_total,
                                vpim.clock.now)

    for seed in range(sessions):
        one_round(demo.latencies_before, seed)
    demo.burn_before = tracker.burn_rate(objective, vpim.clock.now)
    actions = enforcer.evaluate(vpim.clock.now)
    demo.actions = [f"{a.action}: {a.detail}" for a in actions]
    demo.weight_after = victim_flow.weight

    for seed in range(sessions):
        one_round(demo.latencies_after, sessions + seed)
    demo.burn_after = tracker.burn_rate(objective, vpim.clock.now)
    return demo


def slo_demo_report(demo: SloDemoResult) -> str:
    """Human-readable SLO walkthrough."""
    lines = [
        f"objective: victim session p99 <= {demo.objective_p99_s * 1e3:.1f} ms",
        f"burn rate before actuation: {demo.burn_before:.2f} "
        f"(weight {demo.weight_before:.0f})",
    ]
    for action in demo.actions:
        lines.append(f"actuation: {action}")
    lines.append(
        f"burn rate after actuation:  {demo.burn_after:.2f} "
        f"(weight {demo.weight_after:.0f})")
    mean_before = (sum(demo.latencies_before)
                   / max(1, len(demo.latencies_before)))
    mean_after = (sum(demo.latencies_after)
                  / max(1, len(demo.latencies_after)))
    lines.append(
        f"victim mean session latency: {mean_before * 1e3:.2f} ms -> "
        f"{mean_after * 1e3:.2f} ms")
    return "\n".join(lines)
