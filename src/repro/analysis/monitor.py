"""The ``repro monitor`` pipeline: scenarios run under live telemetry.

Every other driver in ``repro.analysis`` reports a *final* scorecard;
this one runs the same scenarios with the full telemetry pipeline
attached — the simulated-time :class:`TimeSeriesStore` scraping on a
fixed cadence, tail-based trace retention with histogram exemplars, and
the :class:`AlertRuleEngine` evaluating on every scrape — and reports
*trajectories*: what every series did over simulated time, which alert
rules moved, and which traces explain the worst latency buckets.

Scenarios (``MonitorConfig.scenario``):

- ``prim``: PrIM applications via :func:`run_app_traced`;
- ``noisy``: the seeded noisy-neighbor run — a victim VM runs a fixed
  session schedule and an aggressor flow is registered for exactly one
  mid-run session, producing one provable slow outlier.  The same
  schedule runs three times (full retention / head sampling / head +
  tail) to demonstrate that tail retention keeps the slowest-decile
  trace head sampling drops at the same budget;
- ``paging``: the rank-overcommit experiment with the pipeline attached
  to the paging arm (swap-latency exemplars);
- ``drill``: a deterministic fault drill that drives the fault-burst
  alert rule through pending → firing → resolved;
- ``cluster``: a fleet load-generator scenario scraped on the shared
  cluster clock;
- ``chaos``: the single-host chaos driver with the pipeline attached;
- ``quick``: the composite CI/bench suite — prim + noisy + paging +
  drill — sized to finish fast while still producing at least one
  exemplar on every instrumented latency histogram.

Everything runs on simulated time, so the resulting artifact is
digest-stable across runs at a fixed seed (the ``BENCH_MONITOR.json``
contract).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.observability.alerts import AlertRule, AlertRuleEngine
from repro.observability.critical_path import layer_self_times
from repro.observability.instruments import FaultInstruments
from repro.observability.timeseries import TimeSeriesStore

#: The latency histograms the tentpole instruments with exemplars; the
#: quick suite must produce at least one exemplar on each.
EXEMPLAR_FAMILIES = (
    "repro_frontend_request_seconds",
    "repro_backend_request_seconds",
    "repro_qos_arbitration_wait_seconds",
    "repro_paging_swap_seconds",
)

#: Max points per dashboard sparkline (downsampled deterministically).
SPARKLINE_POINTS = 160


@dataclass
class MonitorConfig:
    """One reproducible monitored run."""

    scenario: str = "quick"
    seed: int = 0
    #: Scrape cadence in simulated seconds (per-scenario overrides in
    #: :data:`SCENARIO_INTERVALS` win when set to None).
    interval: Optional[float] = None
    #: PrIM apps for the prim scenario.
    apps: Tuple[str, ...] = ("VA", "BS")
    nr_dpus: int = 60
    profile: str = "test"
    #: Noisy-neighbor schedule: total victim sessions, the 0-based index
    #: of the contended one, and the head-sampling budget for the
    #: tail-vs-head demonstration.
    noisy_sessions: int = 12
    noisy_slow_index: int = 10
    noisy_sample_rate: float = 0.25
    tail_factor: float = 1.5
    #: Overcommit quick sizing.
    oc_tenants: int = 4
    oc_ranks: int = 2
    oc_rounds: int = 4
    #: Chaos quick sizing.
    chaos_sessions: int = 4
    chaos_horizon_s: float = 1.0
    chaos_rate_per_s: float = 4.0

    def validate(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ObservabilityError(
                f"unknown monitor scenario {self.scenario!r}; "
                f"known: {sorted(SCENARIOS)}")


#: Default scrape interval per scenario, sized so the quick suite keeps
#: every ring buffer loss-free (the CI gate asserts zero drops).
SCENARIO_INTERVALS: Dict[str, float] = {
    "prim": 1e-3,
    "noisy": 1e-3,
    "paging": 1e-3,
    "drill": 1e-3,
    "cluster": 2e-2,
    "chaos": 5e-3,
}


def default_rules(scenario: str) -> List[AlertRule]:
    """The rule set a monitored scenario evaluates.

    Rules are constructed (and therefore catalog-validated) for every
    scenario; a rule that names an unknown metric raises at this point,
    which is what the CI smoke job turns into a build failure.
    """
    rules = [
        AlertRule(
            name="frontend_p99_slow",
            metric="repro_frontend_request_seconds",
            kind="burn_rate", q=0.99, target=0.5, window=0.5, for_s=0.01,
            bound=1.0, op=">",
            description="frontend p99 request latency burning past 500ms"),
        AlertRule(
            name="fault_burst",
            metric="repro_fault_injected_total",
            kind="threshold", query="delta", op=">", bound=0.0,
            window=0.05, for_s=0.02,
            description="any injected fault within the last 50ms"),
        AlertRule(
            name="scrape_liveness",
            metric="repro_tsdb_scrapes_total",
            kind="absence", window=None, for_s=1.0,
            description="the store itself stopped producing samples"),
    ]
    return rules


class TelemetryPipeline:
    """Store + alert engine + tail sampling, attached to one machine.

    Construction wires everything: the store listens to the clock, the
    engine evaluates after every scrape, and the recorder (when given)
    switches to tail retention with exemplar capture.  Nothing here
    advances the clock.
    """

    def __init__(self, registry, clock, spans=None,
                 interval: float = 1e-3,
                 rules: Optional[List[AlertRule]] = None,
                 extra_registries=(),
                 tail_factor: float = 1.5) -> None:
        self.store = TimeSeriesStore(registry, interval=interval,
                                     extra_registries=extra_registries)
        self.engine = AlertRuleEngine(
            self.store,
            rules if rules is not None else default_rules("quick"),
            registry=registry)
        self.spans = spans
        if spans is not None:
            spans.tail_sampling = True
            spans.tail_factor = tail_factor
            spans.capture_exemplars = True
        self.clock = clock
        clock.add_listener(self._on_tick)
        # Baseline scrape at attach time, so the first real increment of
        # any counter is a visible delta rather than an opening value.
        self._on_tick(clock.now)

    def _on_tick(self, now: float) -> None:
        if self.store.maybe_scrape(now):
            self.engine.evaluate(self.store.last_ts)

    def detach(self) -> None:
        self.clock.remove_listener(self._on_tick)

    def cooldown(self, ticks: int = 120) -> None:
        """Advance the clock ``ticks`` scrape intervals of idle time, so
        windowed alert conditions can clear and resolve.  This is the
        only place the monitor advances time — it is a scenario driver,
        and the cool-down is part of the drill's schedule."""
        for _ in range(ticks):
            self.clock.advance(self.store.interval)


# -- summarization ----------------------------------------------------------

def _downsample(points: List[List[float]],
                limit: int = SPARKLINE_POINTS) -> List[List[float]]:
    if len(points) <= limit:
        return points
    stride = (len(points) + limit - 1) // limit
    sampled = points[::stride]
    if sampled[-1] != points[-1]:
        sampled.append(points[-1])
    return sampled


def _rate_trajectory(store: TimeSeriesStore, name: str) -> List[List[float]]:
    """Per-interval rate of a cumulative counter, for sparklines."""
    raw = store.trajectory(name)
    out: List[List[float]] = []
    for (t0, v0), (t1, v1) in zip(raw, raw[1:]):
        if t1 > t0:
            out.append([t1, (v1 - v0) / (t1 - t0)])
    return _downsample(out)


def _count_trajectory(store: TimeSeriesStore, name: str) -> List[List[float]]:
    """Cumulative value of a counter/gauge over time."""
    return _downsample([[t, v] for t, v in store.trajectory(name)])


def collect_exemplars(registry) -> Dict[str, dict]:
    """Exemplars currently attached to the instrumented histograms."""
    out: Dict[str, dict] = {}
    for family in registry.collect():
        if family.name not in EXEMPLAR_FAMILIES:
            continue
        count = 0
        worst: Optional[dict] = None
        for labels, child in family.samples():
            exemplars = getattr(child, "exemplars", None)
            if not exemplars:
                continue
            count += len(exemplars)
            for exemplar in exemplars.values():
                if worst is None or exemplar.value > worst["value"]:
                    worst = {"trace_id": exemplar.trace_id,
                             "value": exemplar.value, "ts": exemplar.ts,
                             "labels": dict(labels)}
        if count:
            out[family.name] = {"count": count, "worst": worst}
    return out


def top_traces(recorder, k: int = 5) -> List[dict]:
    """The ``k`` slowest retained traces with per-layer breakdowns."""
    ranked = sorted(
        (t for t in recorder.traces
         if t.root is not None and t.root.duration is not None),
        key=lambda t: -t.root.duration)[:k]
    out = []
    for trace in ranked:
        layers = layer_self_times(trace)
        out.append({
            "trace_id": trace.trace_id,
            "root": trace.root.name,
            "duration_s": trace.root.duration,
            "retention": trace.retention,
            "faulted": trace.faulted,
            "spans": len(trace.spans),
            "layers": {layer: seconds
                       for layer, seconds in sorted(layers.items())
                       if seconds > 0},
        })
    return out


@dataclass
class ScenarioTelemetry:
    """What one monitored sub-scenario produced."""

    name: str
    makespan_s: float = 0.0
    scrapes: int = 0
    samples: int = 0
    dropped: int = 0
    series: int = 0
    trajectories: Dict[str, List[List[float]]] = field(default_factory=dict)
    alerts: dict = field(default_factory=dict)
    exemplars: Dict[str, dict] = field(default_factory=dict)
    traces: List[dict] = field(default_factory=list)
    retention_counts: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "makespan_s": self.makespan_s,
            "scrapes": self.scrapes,
            "samples": self.samples,
            "dropped": self.dropped,
            "series": self.series,
            "trajectories": self.trajectories,
            "alerts": self.alerts,
            "exemplars": self.exemplars,
            "traces": self.traces,
            "retention_counts": self.retention_counts,
        }


def _summarize(name: str, pipeline: TelemetryPipeline, registry,
               recorder=None,
               trajectories: Optional[Dict[str, List[List[float]]]] = None,
               makespan_s: float = 0.0) -> ScenarioTelemetry:
    store = pipeline.store
    telemetry = ScenarioTelemetry(
        name=name, makespan_s=makespan_s, scrapes=store.scrapes,
        samples=store.samples_total, dropped=store.dropped_total,
        series=len(store.series),
        trajectories=trajectories or {},
        alerts=pipeline.engine.snapshot(),
        exemplars=collect_exemplars(registry))
    if recorder is not None:
        telemetry.traces = top_traces(recorder)
        counts: Dict[str, int] = {}
        for trace in recorder.traces:
            tier = trace.retention or "none"
            counts[tier] = counts.get(tier, 0) + 1
        telemetry.retention_counts = counts
    return telemetry


# -- scenario runners --------------------------------------------------------

def _interval(config: MonitorConfig, scenario: str) -> float:
    if config.interval is not None:
        return config.interval
    return SCENARIO_INTERVALS[scenario]


def _run_prim(config: MonitorConfig) -> List[ScenarioTelemetry]:
    from repro.analysis.figures import run_app_traced

    out = []
    for app in config.apps:
        holder: dict = {}

        def attach(vpim, _holder=holder) -> None:
            _holder["pipeline"] = TelemetryPipeline(
                vpim.machine.metrics, vpim.clock, spans=vpim.spans,
                interval=_interval(config, "prim"),
                rules=default_rules("prim"),
                tail_factor=config.tail_factor)
            _holder["vpim"] = vpim

        report, registry, recorder = run_app_traced(
            app, config.nr_dpus, mode="vm", profile=config.profile,
            on_vpim=attach)
        pipeline = holder["pipeline"]
        vpim = holder["vpim"]
        # Flush the last partial scrape interval so the trajectory ends
        # at (or past) the run's end.
        pipeline.cooldown(ticks=2)
        pipeline.detach()
        trajectories = {
            "repro_frontend_requests_total":
                _rate_trajectory(pipeline.store,
                                 "repro_frontend_requests_total"),
            "repro_rank_xfer_bytes_total":
                _count_trajectory(pipeline.store,
                                  "repro_rank_xfer_bytes_total"),
        }
        out.append(_summarize(f"prim:{app}", pipeline, registry,
                              recorder=recorder, trajectories=trajectories,
                              makespan_s=vpim.clock.now))
    return out


def _noisy_arm(config: MonitorConfig, sample_rate: float, tail: bool,
               telemetry: bool) -> Tuple[object, object, Optional[
                   TelemetryPipeline]]:
    """One pass of the fixed noisy-neighbor schedule.

    Returns ``(vpim, recorder, pipeline)``; the schedule is identical
    across arms (same seeds, same aggressor window), so trace ids line
    up one-to-one and retention outcomes are directly comparable.
    """
    from repro.analysis.figures import machine_config
    from repro.analysis.qos import (
        NOISY_DEMAND, NOISY_MEAN_OP_S, VICTIM_PARAMS,
    )
    from repro.apps.prim.bs import BinarySearch
    from repro.core import VPim
    from repro.qos.config import QosConfig
    from repro.virt.opts import Optimization

    dpus = 8
    vpim = VPim(machine_config(2, dpus_per_rank=dpus))
    recorder = vpim.spans
    recorder.sample_rate = sample_rate
    pipeline = None
    if telemetry:
        pipeline = TelemetryPipeline(
            vpim.machine.metrics, vpim.clock, spans=recorder,
            interval=_interval(config, "noisy"),
            rules=default_rules("noisy"),
            tail_factor=config.tail_factor)
    elif tail:
        recorder.tail_sampling = True
        recorder.tail_factor = config.tail_factor
    # The unmanaged regime (enforce=False): contention is modeled but
    # nothing caps it, so the aggressor's head-of-line blocking makes the
    # contended session a genuine outlier (~2.3x) rather than the single
    # bounded WFQ quantum enforcement would allow.
    victim = vpim.vm_session(nr_vupmem=1, opts=Optimization(qos=QosConfig(
        weight=1.0, enforce=False, tenant="victim")))
    noisy_session = None
    for i in range(config.noisy_sessions):
        if i == config.noisy_slow_index:
            # The aggressor appears for exactly this session: its flow
            # registers bus demand at boot and unregisters right after,
            # making session ``i`` the one provable slow outlier.
            noisy_session = vpim.vm_session(
                nr_vupmem=1, opts=Optimization(qos=QosConfig(
                    weight=1.0, enforce=False, tenant="noisy",
                    demand=NOISY_DEMAND, mean_op_s=NOISY_MEAN_OP_S)))
        victim.run(BinarySearch(nr_dpus=dpus, seed=config.seed + i,
                                **VICTIM_PARAMS))
        if i == config.noisy_slow_index and noisy_session is not None:
            noisy_session.vm.qos_flow.close()
    return vpim, recorder, pipeline


def run_tail_demo(config: MonitorConfig) -> Tuple[dict,
                                                  Optional[
                                                      ScenarioTelemetry]]:
    """The tail-vs-head retention demonstration (plus its telemetry).

    Three identically-seeded arms: *reference* (full retention — the
    ground truth for root durations), *head* (systematic head sampling
    at the configured budget), *tail* (same budget plus finish-time tail
    retention).  The claim the bench pins: the slowest-decile trace is
    retained by the tail arm and provably dropped by the head arm.
    """
    ref_vpim, ref_recorder, _ = _noisy_arm(config, sample_rate=1.0,
                                           tail=False, telemetry=False)
    durations = sorted(
        ((t.root.duration, t.trace_id) for t in ref_recorder.traces
         if t.root is not None and t.root.duration is not None),
        reverse=True)
    if not durations:
        raise ObservabilityError("noisy-neighbor reference retained nothing")
    decile = max(1, len(durations) // 10)
    slowest = [trace_id for _, trace_id in durations[:decile]]

    _, head_recorder, _ = _noisy_arm(config, config.noisy_sample_rate,
                                     tail=False, telemetry=False)
    tail_vpim, tail_recorder, pipeline = _noisy_arm(
        config, config.noisy_sample_rate, tail=True, telemetry=True)
    head_ids = {t.trace_id for t in head_recorder.traces}
    tail_ids = {t.trace_id for t in tail_recorder.traces}
    demo = {
        "sessions": config.noisy_sessions,
        "slow_index": config.noisy_slow_index,
        "sample_rate": config.noisy_sample_rate,
        "root_durations": [[tid, dur] for dur, tid in sorted(
            ((d, t) for d, t in durations))],
        "slowest_decile": slowest,
        "head_retained": sorted(head_ids),
        "tail_retained": sorted(tail_ids),
        "slowest_kept_by_tail": all(tid in tail_ids for tid in slowest),
        "slowest_dropped_by_head": all(tid not in head_ids
                                       for tid in slowest),
        "tail_tiers": {
            t.trace_id: t.retention for t in tail_recorder.traces},
    }
    telemetry = None
    if pipeline is not None:
        pipeline.cooldown(ticks=2)
        pipeline.detach()
        telemetry = _summarize(
            "noisy", pipeline, tail_vpim.machine.metrics,
            recorder=tail_recorder,
            trajectories={
                "repro_qos_arbitration_wait_p99":
                    _count_trajectory(
                        pipeline.store, "repro_qos_arbitrations_total"),
                "repro_frontend_requests_total":
                    _rate_trajectory(pipeline.store,
                                     "repro_frontend_requests_total"),
            },
            makespan_s=tail_vpim.clock.now)
    return demo, telemetry


def _run_paging(config: MonitorConfig) -> ScenarioTelemetry:
    from repro.analysis.overcommit import run_overcommit

    holder: dict = {}

    def attach(label: str, vpim) -> None:
        if label != "paging":
            return
        holder["pipeline"] = TelemetryPipeline(
            vpim.machine.metrics, vpim.clock, spans=vpim.spans,
            interval=_interval(config, "paging"),
            rules=default_rules("paging"),
            tail_factor=config.tail_factor)
        holder["vpim"] = vpim

    run_overcommit(tenants=config.oc_tenants,
                   physical_ranks=config.oc_ranks,
                   dpus_per_rank=8, rounds=config.oc_rounds,
                   n_elements=1 << 14, on_vpim=attach)
    pipeline = holder["pipeline"]
    vpim = holder["vpim"]
    pipeline.cooldown(ticks=2)
    pipeline.detach()
    return _summarize(
        "paging", pipeline, vpim.machine.metrics, recorder=vpim.spans,
        trajectories={
            "repro_paging_swap_bytes_total":
                _count_trajectory(pipeline.store,
                                  "repro_paging_swap_bytes_total"),
            "repro_paging_faults_total":
                _count_trajectory(pipeline.store,
                                  "repro_paging_faults_total"),
        },
        makespan_s=vpim.clock.now)


def run_fault_drill(config: MonitorConfig) -> Tuple[dict,
                                                    ScenarioTelemetry]:
    """Drive the fault-burst rule through pending → firing → resolved.

    One session provides background traffic; then the drill fires a
    deterministic burst of ``repro_fault_injected_total`` increments at
    known simulated times and idles long enough for the in-window delta
    to clear — the full alert lifecycle on a fixed simulated schedule.
    """
    from repro.analysis.figures import machine_config
    from repro.apps.prim.va import VectorAdd
    from repro.core import VPim

    vpim = VPim(machine_config(1, dpus_per_rank=8))
    pipeline = TelemetryPipeline(
        vpim.machine.metrics, vpim.clock, spans=vpim.spans,
        interval=_interval(config, "drill"),
        rules=default_rules("drill"),
        tail_factor=config.tail_factor)
    session = vpim.vm_session(nr_vupmem=1)
    session.run(VectorAdd(nr_dpus=8, seed=config.seed, n_elements=1 << 12))
    fault_obs = FaultInstruments(vpim.machine.metrics)
    # Clean warmup so the rule demonstrably starts inactive...
    pipeline.cooldown(ticks=30)
    # ...then a burst spread over several scrape intervals (the hold-down
    # is what turns the first breach into pending rather than firing)...
    for _ in range(8):
        fault_obs.injected("drill")
        vpim.clock.advance(pipeline.store.interval)
    # ...then silence long enough for the delta window to clear.
    pipeline.cooldown(ticks=120)
    pipeline.detach()
    transitions = [
        {"ts": t.ts, "rule": t.rule, "from": t.from_state,
         "to": t.to_state}
        for t in pipeline.engine.transitions() if t.rule == "fault_burst"
    ]
    visited = [t["to"] for t in transitions]
    drill = {
        "transitions": transitions,
        "visited_pending": "pending" in visited,
        "visited_firing": "firing" in visited,
        "visited_resolved": "resolved" in visited,
    }
    telemetry = _summarize(
        "drill", pipeline, vpim.machine.metrics, recorder=vpim.spans,
        trajectories={
            "repro_fault_injected_total":
                _count_trajectory(pipeline.store,
                                  "repro_fault_injected_total"),
        },
        makespan_s=vpim.clock.now)
    return drill, telemetry


def _run_cluster(config: MonitorConfig) -> ScenarioTelemetry:
    from repro.cluster.loadgen import LoadGenerator, ScenarioConfig

    generator = LoadGenerator(ScenarioConfig(nr_requests=12,
                                             seed=config.seed))
    cluster = generator.cluster
    pipeline = TelemetryPipeline(
        cluster.metrics, cluster.clock, spans=cluster.spans,
        interval=_interval(config, "cluster"),
        rules=default_rules("cluster"),
        extra_registries=[host.metrics for host in cluster.hosts],
        tail_factor=config.tail_factor)
    generator.run()
    pipeline.cooldown(ticks=2)
    pipeline.detach()
    return _summarize(
        "cluster", pipeline, cluster.metrics, recorder=cluster.spans,
        trajectories={
            "repro_cluster_queue_depth":
                _count_trajectory(pipeline.store,
                                  "repro_cluster_queue_depth"),
            "repro_cluster_sessions_completed_total":
                _count_trajectory(
                    pipeline.store,
                    "repro_cluster_sessions_completed_total"),
        },
        makespan_s=cluster.clock.now)


def _run_chaos(config: MonitorConfig) -> ScenarioTelemetry:
    from repro.analysis.chaos import ChaosConfig, run_chaos

    holder: dict = {}

    def attach(vpim) -> None:
        holder["pipeline"] = TelemetryPipeline(
            vpim.machine.metrics, vpim.clock, spans=vpim.spans,
            interval=_interval(config, "chaos"),
            rules=default_rules("chaos"),
            tail_factor=config.tail_factor)
        holder["vpim"] = vpim

    run_chaos(ChaosConfig(nr_ranks=2, dpus_per_rank=8,
                          nr_sessions=config.chaos_sessions,
                          seed=config.seed,
                          horizon_s=config.chaos_horizon_s,
                          fault_rate_per_s=config.chaos_rate_per_s),
              on_vpim=attach)
    pipeline = holder["pipeline"]
    vpim = holder["vpim"]
    pipeline.cooldown(ticks=120)
    pipeline.detach()
    return _summarize(
        "chaos", pipeline, vpim.machine.metrics, recorder=vpim.spans,
        trajectories={
            "repro_fault_injected_total":
                _count_trajectory(pipeline.store,
                                  "repro_fault_injected_total"),
            "repro_fault_recovered_total":
                _count_trajectory(pipeline.store,
                                  "repro_fault_recovered_total"),
        },
        makespan_s=vpim.clock.now)


# -- the result --------------------------------------------------------------

@dataclass
class MonitorResult:
    """Everything one monitored run produced."""

    scenario: str
    seed: int
    scenarios: List[ScenarioTelemetry] = field(default_factory=list)
    tail_demo: Optional[dict] = None
    drill: Optional[dict] = None

    @property
    def dropped_points(self) -> int:
        return sum(s.dropped for s in self.scenarios)

    def exemplar_families(self) -> Dict[str, int]:
        """Exemplar counts aggregated across scenarios, by family."""
        out: Dict[str, int] = {}
        for telemetry in self.scenarios:
            for name, info in telemetry.exemplars.items():
                out[name] = out.get(name, 0) + info["count"]
        return out

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "dropped_points": self.dropped_points,
            "exemplar_families": self.exemplar_families(),
            "scenarios": [s.to_dict() for s in self.scenarios],
            "tail_demo": self.tail_demo,
            "drill": self.drill,
        }

    def digest(self) -> str:
        """sha256 of the canonical JSON form (the determinism contract)."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()


SCENARIOS = ("quick", "prim", "noisy", "paging", "drill", "cluster",
             "chaos")


def run_monitor(config: MonitorConfig = MonitorConfig()) -> MonitorResult:
    """Run the configured scenario(s) under the telemetry pipeline."""
    config.validate()
    result = MonitorResult(scenario=config.scenario, seed=config.seed)
    scenario = config.scenario
    if scenario in ("quick", "prim"):
        result.scenarios.extend(_run_prim(config))
    if scenario in ("quick", "noisy"):
        demo, telemetry = run_tail_demo(config)
        result.tail_demo = demo
        if telemetry is not None:
            result.scenarios.append(telemetry)
    if scenario in ("quick", "paging"):
        result.scenarios.append(_run_paging(config))
    if scenario in ("quick", "drill"):
        drill, telemetry = run_fault_drill(config)
        result.drill = drill
        result.scenarios.append(telemetry)
    if scenario == "cluster":
        result.scenarios.append(_run_cluster(config))
    if scenario == "chaos":
        result.scenarios.append(_run_chaos(config))
    return result
