"""Execution tracing: a timeline of rank operations and segments.

A :class:`Tracer` attached to a profiler records every driver-centric
operation and every application segment as a timed event on the
simulated clock, and exports the Chrome trace-event JSON format, so a
run can be inspected in ``chrome://tracing`` / Perfetto — the kind of
observability a production virtualization layer ships with.

When constructed with a :class:`~repro.observability.MetricsRegistry`,
the tracer mirrors its event flow into the ``repro_trace_*`` metrics, so
one run emits both artifacts: a timeline for Perfetto and a snapshot for
Prometheus (``docs/observability.md``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.observability import MetricsRegistry
from repro.observability.instruments import TraceInstruments


@dataclass
class TraceEvent:
    """One complete ('X') event on the timeline."""

    name: str
    category: str
    start: float            #: simulated seconds
    duration: float
    args: Dict[str, object] = field(default_factory=dict)

    #: tid of per-rank op tracks (``rank N`` renders as tid RANK_TID_BASE+N).
    RANK_TID_BASE = 10

    @property
    def tid(self) -> int:
        """Track id: segments, ops and misc each get a track, and ops
        carrying a ``rank`` arg get one track *per rank* so Fig. 16-style
        parallel handling renders as separate labeled rows."""
        rank = self.args.get("rank")
        if self.category == "op" and isinstance(rank, int):
            return self.RANK_TID_BASE + rank
        return {"segment": 1, "op": 2}.get(self.category, 3)

    @property
    def track_name(self) -> str:
        rank = self.args.get("rank")
        if self.category == "op" and isinstance(rank, int):
            return f"rank {rank}"
        return {"segment": "segments",
                "op": "driver ops"}.get(self.category, "misc")

    def to_chrome(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "cat": self.category,
            "ph": "X",
            "ts": self.start * 1e6,       # Chrome wants microseconds
            "dur": self.duration * 1e6,
            "pid": 1,
            "tid": self.tid,
            "args": self.args,
        }


class Tracer:
    """Collects trace events; attach via ``profiler.tracer = Tracer()``."""

    def __init__(self, max_events: int = 100_000,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self.dropped = 0
        #: Optional metrics bridge; ``None`` keeps the tracer standalone.
        self.obs = TraceInstruments(registry) if registry is not None else None

    def record(self, name: str, category: str, start: float,
               duration: float, **args: object) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            if self.obs is not None:
                self.obs.dropped()
            return
        self.events.append(TraceEvent(name=name, category=category,
                                      start=start, duration=duration,
                                      args=dict(args)))
        if self.obs is not None:
            self.obs.event(category)

    # -- queries ------------------------------------------------------------

    def by_category(self, category: str) -> List[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def total_time(self, name: Optional[str] = None) -> float:
        return sum(e.duration for e in self.events
                   if name is None or e.name == name)

    # -- export ---------------------------------------------------------------

    def to_chrome_trace(self) -> str:
        """Serialize to the Chrome trace-event JSON format.

        Metadata (``M``) events naming the process and every used track
        follow the ``X`` events, so viewers label per-rank rows instead
        of showing bare tids.
        """
        tracks: Dict[int, str] = {}
        for event in self.events:
            tracks.setdefault(event.tid, event.track_name)
        metadata: List[Dict[str, object]] = [{
            "name": "process_name", "ph": "M", "pid": 1,
            "args": {"name": "vPIM simulation"},
        }]
        for tid in sorted(tracks):
            metadata.append({"name": "thread_name", "ph": "M", "pid": 1,
                             "tid": tid, "args": {"name": tracks[tid]}})
        payload = {
            "traceEvents": [e.to_chrome() for e in self.events] + metadata,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_events": self.dropped},
        }
        return json.dumps(payload)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_chrome_trace())
