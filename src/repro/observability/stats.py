"""Shared statistics primitives for telemetry consumers.

Percentile math used to live twice — a linear-interpolation variant in
``repro.qos.slo`` (numpy's default, feeding burn rates) and a
nearest-rank variant in ``repro.analysis.fleet`` (feeding the fleet
scorecards).  Both conventions are legitimate and *different* on small
samples, so they are kept as two named functions here instead of being
silently unified; the unit tests pin each convention's exact outputs.

:class:`DecayedMean` is the exponentially-decayed baseline the QoS
arbiter's activity tracking and the tail sampler's per-layer duration
reservoirs both need: a deterministic, allocation-free EMA with bias
correction so early samples are not dragged toward zero.
"""

from __future__ import annotations

from typing import List, Sequence


def percentile_linear(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 1] (numpy default).

    This is the SLO-layer convention: between-rank positions interpolate
    between neighbouring order statistics, so p99 of a small window moves
    smoothly as samples arrive.  Returns 0.0 for empty input.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def percentile_nearest_rank(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile, ``q`` in [0, 100] (fleet convention).

    Picks the order statistic whose rank is closest to ``q`` percent of
    the way through the sorted sample — an actually-observed value, which
    is what the fleet scorecards report.  Returns 0.0 for empty input.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = int(round(q / 100.0 * (len(ordered) - 1)))
    return ordered[rank]


def histogram_quantile(q: float,
                       bounds: Sequence[float],
                       bucket_deltas: Sequence[float]) -> float:
    """Prometheus-style quantile estimate from bucket increments.

    ``bounds`` are the finite upper bounds of the ladder (the +Inf bucket
    is ``bucket_deltas[-1]``); ``bucket_deltas`` are per-bucket (not
    cumulative) observation counts over the window, one longer than
    ``bounds``.  Interpolates linearly within the bucket the target rank
    falls into, the way ``histogram_quantile()`` does; observations in
    the +Inf bucket clamp to the highest finite bound.  Returns 0.0 when
    the window holds no observations.
    """
    total = sum(bucket_deltas)
    if total <= 0:
        return 0.0
    target = q * total
    acc = 0.0
    for i, count in enumerate(bucket_deltas[:-1]):
        prev = acc
        acc += count
        if acc >= target and count > 0:
            lo = bounds[i - 1] if i > 0 else 0.0
            hi = bounds[i]
            return lo + (hi - lo) * (target - prev) / count
    return bounds[-1] if bounds else 0.0


class DecayedMean:
    """A bias-corrected exponential moving average.

    ``alpha`` is the per-update decay: each new sample carries weight
    ``alpha`` and history carries ``1 - alpha``.  The raw EMA of a short
    stream underestimates (history weight points at the zero init), so
    the mean is normalized by the accumulated weight — after one update
    the mean *is* the sample, exactly.
    """

    __slots__ = ("alpha", "n", "_ema", "_weight")

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.n = 0
        self._ema = 0.0
        self._weight = 0.0

    def update(self, value: float) -> None:
        self.n += 1
        self._ema = (1.0 - self.alpha) * self._ema + self.alpha * value
        self._weight = (1.0 - self.alpha) * self._weight + self.alpha

    @property
    def mean(self) -> float:
        """The decayed mean; 0.0 before any update."""
        if self._weight <= 0.0:
            return 0.0
        return self._ema / self._weight

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecayedMean(mean={self.mean:.6g}, n={self.n})"


class DecayedReservoir:
    """A bounded sample reservoir with decay-weighted summary queries.

    Keeps the most recent ``size`` samples (oldest evicted first) and
    answers percentile queries over them via the linear-interp
    convention.  The decayed mean rides along so callers can score
    "unusually slow vs recent history" without a second structure —
    this is the tail sampler's per-layer baseline.
    """

    __slots__ = ("size", "samples", "_mean")

    def __init__(self, size: int = 64, alpha: float = 0.3) -> None:
        self.size = size
        self.samples: List[float] = []
        self._mean = DecayedMean(alpha)

    def update(self, value: float) -> None:
        self.samples.append(value)
        if len(self.samples) > self.size:
            self.samples.pop(0)
        self._mean.update(value)

    @property
    def n(self) -> int:
        return self._mean.n

    @property
    def mean(self) -> float:
        return self._mean.mean

    def percentile(self, q: float) -> float:
        """Linear-interp percentile of the retained window, ``q`` in [0, 1]."""
        return percentile_linear(self.samples, q)
