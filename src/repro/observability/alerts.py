"""Declarative alert rules evaluated against the time-series store.

A rule watches one metric through a windowed query and walks a small
state machine::

    inactive --condition true--> pending --held for_s--> firing
    firing --condition false--> resolved --next eval--> inactive

``pending`` is the hold-down Prometheus calls ``for:`` — a condition
must stay true for ``for_s`` simulated seconds before the rule fires, so
a single slow scrape cannot page anyone.  ``resolved`` is a transient
state held for exactly one evaluation, so dashboards can show the
recovery edge before the rule returns to ``inactive``.

Three rule kinds cover the scenarios the monitor runs:

- ``threshold``: a windowed query (rate / delta / latest / percentile)
  compared against a bound;
- ``burn_rate``: observed/target ratio of a latency percentile — the
  SLO-layer convention from ``repro.qos.slo``, reusing the same shared
  percentile math;
- ``absence``: fires when a metric that should be flowing has produced
  no sample within the window (a dead scrape target, a stalled driver).

Rules are validated against the metric catalog at construction: a rule
naming a metric that cannot exist is a configuration bug, and the CI
smoke job turns it into a build failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.observability.catalog import CATALOG
from repro.observability.instruments import AlertInstruments
from repro.observability.metrics import MetricsRegistry
from repro.observability.timeseries import TimeSeriesStore

#: Rule states, in lifecycle order.
STATES = ("inactive", "pending", "firing", "resolved")

#: Supported windowed queries for threshold rules.
_QUERIES = ("rate", "delta", "latest", "percentile")

#: Supported comparison operators.
_OPS = (">", ">=", "<", "<=")


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule.

    ``kind`` selects the evaluation: ``threshold`` compares
    ``query(metric)`` against ``bound`` with ``op``; ``burn_rate``
    compares ``percentile(metric, q) / target`` against ``bound``;
    ``absence`` is true when the metric has no point in ``window``.
    """

    name: str
    metric: str
    kind: str = "threshold"
    query: str = "rate"            #: threshold rules: rate|delta|latest|percentile
    op: str = ">"
    bound: float = 0.0
    q: float = 0.99                #: percentile / burn-rate quantile
    target: float = 0.0            #: burn-rate denominator (SLO target)
    window: Optional[float] = None
    for_s: float = 0.0             #: hold-down before pending -> firing
    labels: Optional[Tuple[Tuple[str, str], ...]] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.metric not in CATALOG:
            raise ObservabilityError(
                f"alert rule {self.name!r} watches unknown metric "
                f"{self.metric!r} (not in the catalog)")
        if self.kind not in ("threshold", "burn_rate", "absence"):
            raise ObservabilityError(
                f"alert rule {self.name!r} has unknown kind {self.kind!r}")
        if self.kind == "threshold" and self.query not in _QUERIES:
            raise ObservabilityError(
                f"alert rule {self.name!r} has unknown query "
                f"{self.query!r} (expected one of {_QUERIES})")
        if self.op not in _OPS:
            raise ObservabilityError(
                f"alert rule {self.name!r} has unknown operator {self.op!r}")
        if self.kind == "burn_rate" and self.target <= 0:
            raise ObservabilityError(
                f"burn-rate rule {self.name!r} needs a positive target")

    def label_dict(self) -> Optional[Dict[str, str]]:
        return dict(self.labels) if self.labels else None


@dataclass
class Transition:
    """One edge of a rule's state machine, for the alert timeline."""

    ts: float
    rule: str
    from_state: str
    to_state: str
    value: float


@dataclass
class _RuleState:
    state: str = "inactive"
    #: Simulated time the condition first went true (pending entry).
    since: Optional[float] = None
    last_value: float = 0.0
    transitions: List[Transition] = field(default_factory=list)


class AlertRuleEngine:
    """Evaluates rules against a :class:`TimeSeriesStore`.

    ``evaluate(now)`` runs every rule once; the monitor drivers call it
    on the scrape cadence.  All state changes are exported through the
    ``repro_alert_*`` families, so the alert layer is itself observable
    (and its trajectory lands in the same store it reads).
    """

    def __init__(self, store: TimeSeriesStore,
                 rules: List[AlertRule],
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.store = store
        self.rules = list(rules)
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise ObservabilityError(f"duplicate alert rule names in {names}")
        self.obs = (AlertInstruments(registry)
                    if registry is not None else None)
        self.states: Dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules
        }
        if self.obs is not None:
            for rule in self.rules:
                self.obs.state(rule.name, "inactive")
        self.evaluations = 0

    # -- condition evaluation ------------------------------------------------

    def _value(self, rule: AlertRule) -> float:
        labels = rule.label_dict()
        if rule.kind == "absence":
            matched = self.store.select(rule.metric, labels)
            present = any(s.window(rule.window) for s in matched)
            return 0.0 if present else 1.0
        if rule.kind == "burn_rate":
            observed = self.store.window_percentile(
                rule.metric, rule.q, labels, rule.window)
            return observed / rule.target
        if rule.query == "rate":
            return self.store.rate(rule.metric, labels, rule.window)
        if rule.query == "delta":
            return self.store.delta(rule.metric, labels, rule.window)
        if rule.query == "latest":
            latest = self.store.latest(rule.metric, labels)
            return latest if latest is not None else 0.0
        return self.store.window_percentile(rule.metric, rule.q, labels,
                                            rule.window)

    def _breached(self, rule: AlertRule, value: float) -> bool:
        if rule.kind == "absence":
            return value >= 1.0
        bound = rule.bound
        if rule.op == ">":
            return value > bound
        if rule.op == ">=":
            return value >= bound
        if rule.op == "<":
            return value < bound
        return value <= bound

    # -- state machine -------------------------------------------------------

    def _move(self, rule: AlertRule, state: _RuleState, to_state: str,
              now: float, value: float) -> None:
        state.transitions.append(Transition(
            ts=now, rule=rule.name, from_state=state.state,
            to_state=to_state, value=value))
        state.state = to_state
        if self.obs is not None:
            self.obs.transition(rule.name, to_state)
            self.obs.state(rule.name, to_state)

    def evaluate(self, now: float) -> None:
        """One evaluation pass at simulated time ``now``."""
        self.evaluations += 1
        for rule in self.rules:
            state = self.states[rule.name]
            value = self._value(rule)
            state.last_value = value
            breached = self._breached(rule, value)
            if self.obs is not None:
                self.obs.evaluation(rule.name)
            if state.state == "resolved":
                # Transient: one evaluation wide, then back to rest.
                self._move(rule, state, "inactive", now, value)
            if state.state == "inactive":
                if breached:
                    state.since = now
                    if now - state.since >= rule.for_s:
                        # Zero hold-down fires immediately.
                        self._move(rule, state, "firing", now, value)
                    else:
                        self._move(rule, state, "pending", now, value)
            elif state.state == "pending":
                if not breached:
                    state.since = None
                    self._move(rule, state, "inactive", now, value)
                elif state.since is not None and now - state.since >= rule.for_s:
                    self._move(rule, state, "firing", now, value)
            elif state.state == "firing":
                if not breached:
                    state.since = None
                    self._move(rule, state, "resolved", now, value)

    # -- queries -------------------------------------------------------------

    def state_of(self, rule_name: str) -> str:
        return self.states[rule_name].state

    def transitions(self) -> List[Transition]:
        """Every transition of every rule, in simulated-time order."""
        out: List[Transition] = []
        for rule in self.rules:
            out.extend(self.states[rule.name].transitions)
        out.sort(key=lambda t: (t.ts, t.rule))
        return out

    def firing(self) -> List[str]:
        return [r.name for r in self.rules
                if self.states[r.name].state == "firing"]

    def snapshot(self) -> dict:
        """Engine state as plain data for the dashboard/JSON artifact."""
        return {
            "evaluations": self.evaluations,
            "rules": [
                {
                    "name": rule.name,
                    "kind": rule.kind,
                    "metric": rule.metric,
                    "state": self.states[rule.name].state,
                    "last_value": self.states[rule.name].last_value,
                    "description": rule.description,
                    "transitions": [
                        {"ts": t.ts, "from": t.from_state,
                         "to": t.to_state, "value": t.value}
                        for t in self.states[rule.name].transitions
                    ],
                }
                for rule in self.rules
            ],
        }
