"""Parsing and diffing of JSON metric snapshots.

One parser, two consumers: ``repro metrics --diff OLD NEW`` (counters as
rates, gauges as last) and the monitor dashboard, which renders the same
parsed form.  The input is whatever :func:`repro.observability.export.
snapshot_dict` wrote — including the optional ``sim_time`` stamp, which
is what turns a counter delta into a rate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ObservabilityError

#: Sample key inside one family: the sorted label items.
SampleKey = Tuple[Tuple[str, str], ...]


@dataclass
class SnapshotFamily:
    """One metric family parsed out of a JSON snapshot."""

    name: str
    kind: str
    help: str = ""
    #: Scalar samples (counter/gauge): label items -> value.
    values: Dict[SampleKey, float] = field(default_factory=dict)
    #: Histogram samples: label items -> (count, sum).
    histograms: Dict[SampleKey, Tuple[float, float]] = field(
        default_factory=dict)
    #: Exemplars present on histogram samples: label items -> trace ids.
    exemplars: Dict[SampleKey, List[str]] = field(default_factory=dict)


@dataclass
class Snapshot:
    """One parsed snapshot: families by name, plus its sim-time stamp."""

    families: Dict[str, SnapshotFamily]
    sim_time: Optional[float] = None

    def family(self, name: str) -> Optional[SnapshotFamily]:
        return self.families.get(name)


def parse_snapshot(data: dict) -> Snapshot:
    """Parse a ``snapshot_dict`` payload into a :class:`Snapshot`."""
    if not isinstance(data, dict) or "metrics" not in data:
        raise ObservabilityError(
            "not a metrics snapshot (expected a dict with a 'metrics' key)")
    families: Dict[str, SnapshotFamily] = {}
    for raw in data["metrics"]:
        family = SnapshotFamily(name=raw["name"], kind=raw["type"],
                                help=raw.get("help", ""))
        for sample in raw.get("samples", ()):
            key = tuple(sorted(sample.get("labels", {}).items()))
            if "buckets" in sample:
                family.histograms[key] = (float(sample["count"]),
                                          float(sample["sum"]))
                trace_ids = [b["exemplar"]["trace_id"]
                             for b in sample["buckets"]
                             if "exemplar" in b]
                if trace_ids:
                    family.exemplars[key] = trace_ids
            else:
                family.values[key] = float(sample["value"])
        families[family.name] = family
    return Snapshot(families=families, sim_time=data.get("sim_time"))


def load_snapshot(path: str) -> Snapshot:
    """Parse the snapshot JSON file at ``path``."""
    with open(path) as handle:
        return parse_snapshot(json.load(handle))


@dataclass
class FamilyDelta:
    """Per-family change between two snapshots."""

    name: str
    kind: str
    #: counters: increase (and rate when elapsed is known); gauges: the
    #: newer value; histograms: (count increase, sum increase).
    rows: List[dict] = field(default_factory=list)


def diff_snapshots(old: Snapshot, new: Snapshot) -> List[FamilyDelta]:
    """Per-sample deltas: counters as increases/rates, gauges as last.

    Families or samples absent from ``old`` diff against zero (they were
    born between the snapshots); families absent from ``new`` are
    omitted (nothing to report about a metric that stopped existing).
    """
    elapsed: Optional[float] = None
    if old.sim_time is not None and new.sim_time is not None:
        span = new.sim_time - old.sim_time
        if span > 0:
            elapsed = span
    deltas: List[FamilyDelta] = []
    for name in sorted(new.families):
        family = new.families[name]
        before = old.families.get(name)
        delta = FamilyDelta(name=name, kind=family.kind)
        if family.kind == "histogram":
            for key, (count, total) in sorted(family.histograms.items()):
                b_count, b_sum = (before.histograms.get(key, (0.0, 0.0))
                                  if before else (0.0, 0.0))
                row = {"labels": dict(key), "count": count - b_count,
                       "sum": total - b_sum}
                if elapsed is not None:
                    row["rate"] = (count - b_count) / elapsed
                delta.rows.append(row)
        else:
            for key, value in sorted(family.values.items()):
                if family.kind == "counter":
                    prev = before.values.get(key, 0.0) if before else 0.0
                    row = {"labels": dict(key), "increase": value - prev}
                    if elapsed is not None:
                        row["rate"] = (value - prev) / elapsed
                else:
                    row = {"labels": dict(key), "value": value}
                delta.rows.append(row)
        if delta.rows:
            deltas.append(delta)
    return deltas


def format_deltas(deltas: List[FamilyDelta],
                  nonzero_only: bool = True) -> str:
    """Human-readable rendering of :func:`diff_snapshots` output."""
    lines: List[str] = []
    for delta in deltas:
        rows = delta.rows
        if nonzero_only:
            def _moved(row: dict) -> bool:
                if delta.kind == "counter":
                    return row["increase"] != 0
                if delta.kind == "histogram":
                    return row["count"] != 0
                return True
            rows = [row for row in rows if _moved(row)]
        if not rows:
            continue
        lines.append(f"{delta.name} ({delta.kind})")
        for row in rows:
            labels = ",".join(f"{k}={v}" for k, v in row["labels"].items())
            label_str = f"{{{labels}}}" if labels else ""
            if delta.kind == "counter":
                body = f"+{row['increase']:g}"
                if "rate" in row:
                    body += f" ({row['rate']:g}/s)"
            elif delta.kind == "histogram":
                body = f"+{row['count']:g} obs, +{row['sum']:g}s"
                if "rate" in row:
                    body += f" ({row['rate']:g}/s)"
            else:
                body = f"{row['value']:g}"
            lines.append(f"  {label_str or '(no labels)'} {body}")
    return "\n".join(lines) if lines else "(no change)"
