"""The metric catalog: every metric this codebase may emit, declared once.

Components never call the registry with ad-hoc names; they go through
:func:`instrument`, which only accepts names declared here.  That makes
the catalog the single source of truth three consumers share:

- the instrumentation layer (:mod:`repro.observability.instruments`);
- ``docs/observability.md``, whose metric table is validated against this
  module by the docs-check test (``tests/test_docs.py``);
- :func:`register_all`, which pre-registers every family so an exporter
  can render a complete (if zero-valued) snapshot before any traffic.

Each spec names the paper figure/section the metric supports, because the
whole point of this subsystem is making the paper's breakdowns (Figs.
12-16) observable live instead of post-hoc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.observability.metrics import MetricFamily, MetricsRegistry


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric family."""

    name: str
    kind: str                      #: counter | gauge | histogram
    help: str
    labels: Tuple[str, ...] = ()
    paper: str = ""                #: figure/section this metric supports
    buckets: Optional[Tuple[float, ...]] = None

    def create(self, registry: MetricsRegistry) -> MetricFamily:
        if self.kind == "counter":
            return registry.counter(self.name, self.help, self.labels)
        if self.kind == "gauge":
            return registry.gauge(self.name, self.help, self.labels)
        return registry.histogram(self.name, self.help, self.labels,
                                  buckets=self.buckets)


_SPECS: Tuple[MetricSpec, ...] = (
    # -- frontend: the guest driver's two message-count optimizations ------
    MetricSpec(
        "repro_frontend_prefetch_lookups_total", "counter",
        "Prefetch-cache lookups in the guest driver, by outcome",
        ("vm", "device", "result"), paper="Fig. 14 (hits column), §4.1"),
    MetricSpec(
        "repro_frontend_prefetch_refills_total", "counter",
        "Cache-segment fetches triggered by prefetch misses",
        ("vm", "device"), paper="§4.1 (prefetch cache)"),
    MetricSpec(
        "repro_frontend_batched_writes_total", "counter",
        "Small MRAM writes absorbed by the batch buffer instead of sent",
        ("vm", "device"), paper="Fig. 14 (batched column), §4.1"),
    MetricSpec(
        "repro_frontend_batch_flushes_total", "counter",
        "Collective flushes of the write-batch buffer, by trigger",
        ("vm", "device", "reason"), paper="§4.1 (request batching)"),
    MetricSpec(
        "repro_frontend_requests_total", "counter",
        "virtio-pim requests actually sent on the transferq, by op code",
        ("vm", "device", "kind"), paper="Fig. 14 (messages column)"),
    MetricSpec(
        "repro_frontend_request_seconds", "histogram",
        "Simulated guest->VMM->guest round-trip latency per request",
        ("vm", "device", "kind"), paper="Fig. 13 (request time)"),
    MetricSpec(
        "repro_virtio_queue_depth", "gauge",
        "Descriptor chains outstanding on a virtqueue",
        ("vm", "device", "queue"), paper="Appendix A.1 (512-slot transferq)"),
    MetricSpec(
        "repro_virtio_kicks_total", "counter",
        "Guest notifications (trapped MMIO writes) per virtqueue",
        ("vm", "device", "queue"), paper="§3.4 (transition cost)"),

    # -- backend: the device model inside Firecracker ----------------------
    MetricSpec(
        "repro_backend_requests_total", "counter",
        "Requests processed by the VMM backend, by op code and bound rank",
        ("vm", "device", "rank", "kind"), paper="§4.2"),
    MetricSpec(
        "repro_backend_request_seconds", "histogram",
        "Simulated backend worker time per request (deser+translate+data)",
        ("vm", "device", "kind"), paper="Fig. 13 (Deser/T-data steps)"),
    MetricSpec(
        "repro_backend_translation_seconds", "histogram",
        "Simulated threaded GPA->HVA translation time per data request",
        ("vm", "device"), paper="§4.2 (8 translation threads)"),
    MetricSpec(
        "repro_backend_translated_pages_total", "counter",
        "Guest pages translated for zero-copy access",
        ("vm", "device"), paper="§4.2 (zero copy)"),
    MetricSpec(
        "repro_backend_interleave_seconds", "histogram",
        "Simulated data-path time (byte interleave + copy) per transfer",
        ("vm", "device"), paper="Fig. 11 (C vs Rust data path)"),
    MetricSpec(
        "repro_backend_batch_replay_records_total", "counter",
        "Buffered small writes replayed as individual rank operations",
        ("vm", "device"), paper="§4.1 (batching merges messages, not ops)"),
    MetricSpec(
        "repro_xlb_hits_total", "counter",
        "GPA->HVA page runs served by the backend translation cache",
        ("vm", "device"), paper="§4.2 (translation threads; wall-clock XLB)"),
    MetricSpec(
        "repro_xlb_misses_total", "counter",
        "GPA->HVA page runs that required full bounds-checked translation",
        ("vm", "device"), paper="§4.2 (translation threads; wall-clock XLB)"),
    MetricSpec(
        "repro_bufpool_reuse_total", "counter",
        "Data-plane buffer acquisitions served from the reuse pool",
        ("vm", "device"), paper="§5.4.1 (host-side copy plumbing cost)"),
    MetricSpec(
        "repro_xfer_cache_hits_total", "counter",
        "Write extents suppressed by the content-aware transfer cache",
        ("vm", "device"), paper="PIM-CACHE extension (docs/transfer_cache.md)"),
    MetricSpec(
        "repro_xfer_cache_misses_total", "counter",
        "Write extents probed but not matched in the digest index",
        ("vm", "device"), paper="PIM-CACHE extension (docs/transfer_cache.md)"),
    MetricSpec(
        "repro_xfer_cache_suppressed_bytes_total", "counter",
        "Payload bytes elided from the wire by transfer suppression",
        ("vm", "device"), paper="PIM-CACHE extension (docs/transfer_cache.md)"),
    MetricSpec(
        "repro_xfer_cache_invalidations_total", "counter",
        "Digest records dropped, by invalidation reason",
        ("vm", "device", "reason"),
        paper="PIM-CACHE extension (docs/transfer_cache.md)"),
    MetricSpec(
        "repro_plan_cache_hits_total", "counter",
        "Transfers replayed from a compiled shape-specialized plan",
        ("vm", "device"), paper="§4.1/§4.2 (docs/performance.md)"),
    MetricSpec(
        "repro_plan_cache_misses_total", "counter",
        "Plannable transfers that compiled a new plan first",
        ("vm", "device"), paper="§4.1/§4.2 (docs/performance.md)"),
    MetricSpec(
        "repro_plan_cache_evictions_total", "counter",
        "Plans dropped by the LRU bound of the plan cache",
        ("vm", "device"), paper="docs/performance.md (plan cache)"),
    MetricSpec(
        "repro_plan_cache_invalidations_total", "counter",
        "Plans dropped because replay became unsafe, by reason",
        ("vm", "device", "reason"),
        paper="docs/performance.md (plan cache)"),

    # -- manager: host-wide rank arbitration --------------------------------
    MetricSpec(
        "repro_manager_state_transitions_total", "counter",
        "Rank-table state transitions (ALLO/NAAV/NANA lifecycle)",
        ("from_state", "to_state"), paper="Fig. 5, §3.5"),
    MetricSpec(
        "repro_manager_allocations_total", "counter",
        "Rank allocation decisions, by active NAAV policy and outcome",
        ("policy", "outcome"), paper="§3.5 (allocation policy order)"),
    MetricSpec(
        "repro_manager_alloc_wait_seconds", "histogram",
        "Simulated time a requester waited for a rank (incl. reset waits)",
        ("policy",), paper="§4.2 (manager overhead)"),
    MetricSpec(
        "repro_manager_resets_total", "counter",
        "Isolation resets scheduled after a rank release",
        (), paper="§3.5 (reset-for-isolation)"),
    MetricSpec(
        "repro_manager_ranks", "gauge",
        "Ranks currently in each lifecycle state",
        ("state",), paper="Fig. 5"),
    MetricSpec(
        "repro_manager_allocation_retries_exhausted_total", "counter",
        "Allocation requests abandoned after the retry budget ran out",
        ("policy",), paper="§3.5 (allocation policy step 4)"),

    # -- hardware: per-rank operation telemetry -----------------------------
    MetricSpec(
        "repro_rank_xfer_ops_total", "counter",
        "Rank transfer operations, by direction",
        ("rank", "direction"), paper="Fig. 12 (W-rank/R-rank counts)"),
    MetricSpec(
        "repro_rank_xfer_bytes_total", "counter",
        "Bytes moved between host and MRAM banks, by direction",
        ("rank", "direction"), paper="Fig. 9c (size sensitivity)"),
    MetricSpec(
        "repro_rank_xfer_seconds", "histogram",
        "Simulated duration of each rank transfer operation",
        ("rank", "direction"), paper="Fig. 13 (T-data step)"),
    MetricSpec(
        "repro_rank_launches_total", "counter",
        "Rank-level program launches",
        ("rank",), paper="§2 (launch runs to completion)"),
    MetricSpec(
        "repro_rank_dpu_boots_total", "counter",
        "Individual DPU boots performed by launches",
        ("rank",), paper="§2"),
    MetricSpec(
        "repro_rank_launch_seconds", "histogram",
        "Simulated duration of each launch (slowest DPU of the rank)",
        ("rank",), paper="Fig. 8 (DPU segment)"),
    MetricSpec(
        "repro_rank_ci_ops_total", "counter",
        "Control-interface operations, by command kind",
        ("rank", "command"), paper="Fig. 12 (CI bar), §5.3.1"),
    MetricSpec(
        "repro_rank_resets_total", "counter",
        "Hardware resets (manager-triggered isolation wipes)",
        ("rank",), paper="§3.5"),
    MetricSpec(
        "repro_dpu_faults_total", "counter",
        "DPU kernels that faulted during a launch",
        ("rank",), paper="§2 (CI-reported FAULT state)"),

    # -- VM lifecycle ------------------------------------------------------
    MetricSpec(
        "repro_vm_boots_total", "counter",
        "microVMs booted by the Firecracker launcher",
        (), paper="§3.2"),
    MetricSpec(
        "repro_vm_boot_seconds", "histogram",
        "Simulated boot time per microVM (base + per-device cost)",
        (), paper="§3.2 (up to 2 ms per vUPMEM device)"),
    MetricSpec(
        "repro_vm_vupmem_devices", "gauge",
        "vUPMEM devices attached to each VM",
        ("vm",), paper="§3.3 (vUPMEM booking)"),

    # -- sessions ----------------------------------------------------------
    MetricSpec(
        "repro_session_runs_total", "counter",
        "Application executions, by transport mode and verification result",
        ("app", "mode", "verified"), paper="§5 (evaluation runs)"),
    MetricSpec(
        "repro_session_run_seconds", "histogram",
        "Simulated end-to-end application time per run",
        ("app", "mode"), paper="Fig. 8 (total time)"),

    # -- cluster control plane (repro.cluster; §7 consolidation) ------------
    MetricSpec(
        "repro_cluster_requests_total", "counter",
        "Tenant VM requests received by the fleet scheduler, by outcome",
        ("policy", "outcome"), paper="§7 (dynamic workload consolidation)"),
    MetricSpec(
        "repro_cluster_queue_depth", "gauge",
        "Requests waiting in the bounded admission queue",
        (), paper="§6 (R2: underutilized reservations)"),
    MetricSpec(
        "repro_cluster_queue_wait_seconds", "histogram",
        "Simulated wait between request arrival and VM placement",
        ("policy",), paper="§7"),
    MetricSpec(
        "repro_cluster_placements_total", "counter",
        "Tenant VMs placed on a host, by placement policy",
        ("policy", "host"), paper="§7"),
    MetricSpec(
        "repro_cluster_sessions_completed_total", "counter",
        "Tenant sessions that ran to completion and departed",
        ("host",), paper="§5 (evaluation sessions)"),
    MetricSpec(
        "repro_cluster_ranks_allocated", "gauge",
        "Ranks currently allocated to tenants on each host",
        ("host",), paper="§1 (R2: underutilization motivation)"),
    MetricSpec(
        "repro_cluster_active_vms", "gauge",
        "Tenant VMs currently placed on each host",
        ("host",), paper="§3.2"),
    MetricSpec(
        "repro_cluster_migrations_total", "counter",
        "Cross-host vUPMEM device migrations driven by the consolidator",
        ("from_host", "to_host"), paper="§7 (checkpoint/restore)"),
    MetricSpec(
        "repro_cluster_migrated_bytes_total", "counter",
        "Checkpointed MRAM bytes moved between hosts by migrations",
        (), paper="§7"),
    MetricSpec(
        "repro_cluster_consolidation_runs_total", "counter",
        "Defragmentation passes executed by the consolidator loop",
        (), paper="§7 (dynamic workload consolidation)"),
    MetricSpec(
        "repro_cluster_hosts_drained_total", "counter",
        "Hosts whose last allocated rank was migrated away",
        (), paper="§7 (consolidation frees whole hosts)"),

    # -- QoS: weighted-fair bus arbitration + SLO layer (repro.qos) ----------
    MetricSpec(
        "repro_qos_arbitrations_total", "counter",
        "Bus/event-loop arbitration decisions per flow, by scheduling mode",
        ("vm", "mode"), paper="§6 R2 (multi-tenant isolation; docs/qos.md)"),
    MetricSpec(
        "repro_qos_arbitration_wait_seconds", "histogram",
        "Modeled per-operation delay from sharing the host bus, by cause",
        ("vm", "cause"), paper="Fig. 16 (bus contention; docs/qos.md)"),
    MetricSpec(
        "repro_qos_throttled_total", "counter",
        "Token-bucket throttle events per flow, by resource",
        ("vm", "resource"), paper="docs/qos.md (token buckets)"),
    MetricSpec(
        "repro_qos_throttle_wait_seconds", "histogram",
        "Modeled wait imposed by token-bucket throttles, by resource",
        ("vm", "resource"), paper="docs/qos.md (token buckets)"),
    MetricSpec(
        "repro_qos_flow_weight", "gauge",
        "Current weighted-fair-queueing weight of each registered flow",
        ("vm",), paper="docs/qos.md (WFQ weights)"),
    MetricSpec(
        "repro_qos_slo_burn_rate", "gauge",
        "Observed/target ratio per tenant objective (>1 = burning hot)",
        ("tenant", "objective"), paper="docs/qos.md (SLO layer)"),
    MetricSpec(
        "repro_qos_slo_violations_total", "counter",
        "Enforcement passes that found a tenant objective burning hot",
        ("tenant", "objective"), paper="docs/qos.md (SLO layer)"),
    MetricSpec(
        "repro_qos_slo_actuations_total", "counter",
        "SLO enforcement actions taken, by action kind",
        ("tenant", "action"), paper="docs/qos.md (actuation ladder)"),

    # -- rank demand paging (repro.paging; §7 oversubscription) --------------
    MetricSpec(
        "repro_paging_swaps_total", "counter",
        "Rank state copies between frames and the swap store, by direction",
        ("direction",), paper="§7 (checkpoint/restore; docs/paging.md)"),
    MetricSpec(
        "repro_paging_swap_bytes_total", "counter",
        "Checkpointed MRAM bytes moved by swap traffic, by direction",
        ("direction",), paper="docs/paging.md (swap traffic)"),
    MetricSpec(
        "repro_paging_swap_seconds", "histogram",
        "Modeled duration of each swap copy (charged at rank bandwidth)",
        ("direction",), paper="docs/paging.md (cost model)"),
    MetricSpec(
        "repro_paging_faults_total", "counter",
        "Rank faults taken by the pager, by kind",
        ("kind",), paper="docs/paging.md (demand vs predictive faults)"),
    MetricSpec(
        "repro_paging_evictions_total", "counter",
        "Victim ranks swapped out to free a frame, by eviction policy",
        ("policy",), paper="docs/paging.md (eviction policies)"),
    MetricSpec(
        "repro_paging_ranks", "gauge",
        "Virtual ranks currently in each residency state",
        ("state",), paper="docs/paging.md (residency lifecycle)"),
    MetricSpec(
        "repro_paging_store_bytes", "gauge",
        "Swap-store footprint: logical (raw) vs deduplicated (stored)",
        ("kind",), paper="docs/paging.md (SwapStore dedup)"),
    MetricSpec(
        "repro_paging_dedup_hits_total", "counter",
        "Swapped segments whose payload was already held by the store",
        (), paper="docs/paging.md (content-addressed segments)"),
    MetricSpec(
        "repro_paging_prefault_overlap_seconds_total", "counter",
        "Swap-in time hidden under virtio queue wait by predictive faults",
        (), paper="docs/paging.md (predictive swap-in)"),

    # -- fault injection & recovery (repro.faults) ---------------------------
    MetricSpec(
        "repro_fault_injected_total", "counter",
        "Fault events fired by the injector, by fault kind",
        ("kind",), paper="§3.5 motivation (ranks are failure-prone)"),
    MetricSpec(
        "repro_fault_detected_total", "counter",
        "Faults noticed by a stack layer (error raised or verify failed)",
        ("kind", "layer"), paper="§3.5 (manager health tracking)"),
    MetricSpec(
        "repro_fault_recovered_total", "counter",
        "Successful recovery actions, by fault kind and action taken",
        ("kind", "action"), paper="§7 (checkpoint/restore enables recovery)"),
    MetricSpec(
        "repro_fault_recovery_seconds", "histogram",
        "Simulated time from fault detection to recovered service (MTTR)",
        ("kind",), paper="§7"),
    MetricSpec(
        "repro_fault_sessions_lost_total", "counter",
        "Sessions abandoned because recovery was impossible or exhausted",
        (), paper="§3.5 (isolation keeps failures per-tenant)"),
    MetricSpec(
        "repro_fault_retries_total", "counter",
        "Bounded-backoff retries of an operation after a transient fault",
        ("layer",), paper="§4.1 (frontend request path)"),

    # -- trace bridge ------------------------------------------------------
    MetricSpec(
        "repro_trace_events_total", "counter",
        "Events mirrored from the Chrome-trace tracer, by category",
        ("category",), paper="Figs. 12-16 (post-hoc breakdowns)"),
    MetricSpec(
        "repro_trace_dropped_events_total", "counter",
        "Trace events dropped after the tracer's event cap",
        (), paper="implementation backstop (no paper counterpart)"),

    # -- distributed tracing (repro.observability.spans) ---------------------
    MetricSpec(
        "repro_span_started_total", "counter",
        "Spans opened by the recorder, by stack layer",
        ("layer",), paper="Figs. 12/13 (per-layer request breakdowns)"),
    MetricSpec(
        "repro_span_dropped_total", "counter",
        "Spans dropped by the per-trace or retained-trace caps, by reason",
        ("reason",), paper="implementation backstop (bounded memory)"),
    MetricSpec(
        "repro_span_traces_total", "counter",
        "Traces finished by the recorder, by retention outcome",
        ("retained",), paper="§5 (sampled evaluation runs)"),
    MetricSpec(
        "repro_span_retention_total", "counter",
        "Traces classified by the tail sampler, by retention tier",
        ("tier",), paper="docs/monitoring.md (tail-based retention)"),

    # -- telemetry pipeline (repro.observability.timeseries / .alerts) -------
    MetricSpec(
        "repro_tsdb_scrapes_total", "counter",
        "Registry scrapes completed by the time-series store",
        (), paper="docs/monitoring.md (scrape cadence)"),
    MetricSpec(
        "repro_tsdb_samples_total", "counter",
        "Data points appended across all series by the store",
        (), paper="docs/monitoring.md (ring buffers)"),
    MetricSpec(
        "repro_tsdb_dropped_points_total", "counter",
        "Oldest points overwritten by a full series ring buffer",
        ("name",), paper="docs/monitoring.md (bounded retention)"),
    MetricSpec(
        "repro_tsdb_series", "gauge",
        "Distinct series (metric name + label set) currently held",
        (), paper="docs/monitoring.md (cardinality)"),
    MetricSpec(
        "repro_alert_state", "gauge",
        "Whether each alert rule currently occupies the given state",
        ("rule", "state"), paper="docs/monitoring.md (rule state machine)"),
    MetricSpec(
        "repro_alert_transitions_total", "counter",
        "Alert rule state transitions, by destination state",
        ("rule", "to_state"), paper="docs/monitoring.md (rule state machine)"),
    MetricSpec(
        "repro_alert_evaluations_total", "counter",
        "Rule evaluation passes executed by the alert engine",
        ("rule",), paper="docs/monitoring.md (evaluation loop)"),
)

#: Name -> spec for quick lookup.
CATALOG: Dict[str, MetricSpec] = {spec.name: spec for spec in _SPECS}


def instrument(registry: MetricsRegistry, name: str) -> MetricFamily:
    """Create/fetch the family for a *cataloged* metric name.

    Raises :class:`~repro.errors.ObservabilityError` for names missing
    from the catalog, so instrumentation cannot drift from the documented
    metric set.
    """
    spec = CATALOG.get(name)
    if spec is None:
        raise ObservabilityError(
            f"metric {name!r} is not in the catalog "
            "(add it to repro/observability/catalog.py and "
            "docs/observability.md)"
        )
    return spec.create(registry)


def register_all(registry: MetricsRegistry) -> None:
    """Pre-register every cataloged family (zero-valued until traffic)."""
    for spec in _SPECS:
        spec.create(registry)
