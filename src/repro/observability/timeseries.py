"""A simulated-time time-series store over the metrics registry.

The registry answers "what is the cumulative count *now*?"; the paper's
evaluation needs trajectories (Fig. 8/13/16 are all time-resolved), and
the alert engine needs windows.  This store bridges the two: it scrapes
one or more registries on a fixed simulated-time cadence and keeps a
bounded ring buffer of points per series, exactly the way a Prometheus
server would — except the clock is the simulation's, so two runs at the
same seed produce byte-identical trajectories.

Design constraints, in order:

- **No clock writes.**  The store *listens* to the shared
  :class:`~repro.hardware.clock.SimClock` (``attach``) and scrapes when
  time crosses a grid boundary; it never advances time itself.
- **Deterministic stamps.**  Samples are stamped at the grid time
  ``floor(now / interval) * interval``, not at ``now``: the wall of
  drivers advancing the clock by irregular modeled durations would
  otherwise leak scheduling order into timestamps.  One scrape per
  boundary crossing, however large the jump — a 10-interval leap yields
  one sample at the latest grid point, bounding scrape work.
- **Bounded memory, exact accounting.**  Each series keeps at most
  ``max_points`` points; every overwritten point increments a drop
  counter (per series, and the ``repro_tsdb_dropped_points_total``
  family by metric name).  The CI smoke job fails on any nonzero drop,
  so quick-suite retention is provably lossless.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.observability.instruments import TsdbInstruments
from repro.observability.metrics import (
    HistogramChild,
    MetricsRegistry,
)
from repro.observability.stats import histogram_quantile, percentile_linear

#: Series key: metric name + sorted label items.
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


class Series:
    """One stream of points for a (name, label-set) pair.

    Counter/gauge points are ``(ts, value)``; histogram points are
    ``(ts, count, sum, bucket_counts)`` with per-bucket *cumulative over
    time* counts (each point is the histogram's full state at that
    instant), so windowed queries difference two points.
    """

    __slots__ = ("name", "labels", "kind", "bounds", "points", "dropped")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...],
                 kind: str, max_points: int,
                 bounds: Optional[Tuple[float, ...]] = None) -> None:
        self.name = name
        self.labels = labels
        self.kind = kind
        self.bounds = bounds
        self.points: Deque[tuple] = deque(maxlen=max_points)
        self.dropped = 0

    def append(self, point: tuple) -> bool:
        """Append, returning True if an old point was overwritten."""
        overwrote = (self.points.maxlen is not None
                     and len(self.points) == self.points.maxlen)
        if overwrote:
            self.dropped += 1
        self.points.append(point)
        return overwrote

    def window(self, window: Optional[float]) -> List[tuple]:
        """Points within ``window`` seconds of the newest (all if None)."""
        if not self.points:
            return []
        if window is None:
            return list(self.points)
        cutoff = self.points[-1][0] - window
        return [p for p in self.points if p[0] >= cutoff]

    def __len__(self) -> int:
        return len(self.points)


class TimeSeriesStore:
    """Scrapes registries on a simulated cadence and answers windowed queries.

    Usage::

        store = TimeSeriesStore(machine.metrics, interval=0.001)
        store.attach(machine.clock)     # scrape as simulated time moves
        ... run any scenario ...
        store.rate("repro_frontend_requests_total", window=0.01)
        store.window_percentile("repro_frontend_request_seconds", 0.99)
    """

    def __init__(self, registry: MetricsRegistry,
                 interval: float = 0.001,
                 max_points: int = 4096,
                 extra_registries: Sequence[MetricsRegistry] = ()) -> None:
        if interval <= 0:
            raise ValueError(f"scrape interval must be positive, got {interval}")
        self.interval = interval
        self.max_points = max_points
        self.registry = registry
        self.registries: List[MetricsRegistry] = [registry]
        self.registries.extend(extra_registries)
        self.obs = TsdbInstruments(registry)
        self.series: Dict[SeriesKey, Series] = {}
        self.scrapes = 0
        self.samples_total = 0
        self.dropped_total = 0
        #: Grid timestamp of the most recent scrape (None before any).
        self.last_ts: Optional[float] = None
        self._last_grid = -1
        self._clocks: List = []

    # -- scraping ------------------------------------------------------------

    def attach(self, clock) -> None:
        """Scrape whenever ``clock`` moves past a grid boundary."""
        clock.add_listener(self._on_tick)
        self._clocks.append(clock)

    def detach(self) -> None:
        """Stop listening to every attached clock."""
        for clock in self._clocks:
            clock.remove_listener(self._on_tick)
        self._clocks.clear()

    def add_registry(self, registry: MetricsRegistry) -> None:
        """Scrape ``registry`` too (cluster scenarios: per-host + fleet)."""
        if registry not in self.registries:
            self.registries.append(registry)

    def _on_tick(self, now: float) -> None:
        self.maybe_scrape(now)

    def maybe_scrape(self, now: float) -> bool:
        """Scrape iff ``now`` crossed a grid boundary since the last scrape."""
        grid = math.floor(now / self.interval)
        if grid <= self._last_grid:
            return False
        self._last_grid = grid
        self.scrape(grid * self.interval)
        return True

    def scrape(self, ts: float) -> int:
        """Record one point per live series, stamped ``ts``.  Returns the
        number of points appended."""
        appended = 0
        drops: Dict[str, int] = {}
        for registry in self.registries:
            for family in registry.collect():
                for labels, child in family.samples():
                    key = (family.name, tuple(sorted(labels.items())))
                    series = self.series.get(key)
                    if isinstance(child, HistogramChild):
                        if series is None:
                            series = Series(family.name, key[1], family.kind,
                                            self.max_points,
                                            bounds=tuple(child.buckets))
                            self.series[key] = series
                        point = (ts, child.count, child.sum,
                                 tuple(child.bucket_counts))
                    else:
                        if series is None:
                            series = Series(family.name, key[1], family.kind,
                                            self.max_points)
                            self.series[key] = series
                        point = (ts, child.value)
                    if series.append(point):
                        drops[family.name] = drops.get(family.name, 0) + 1
                    appended += 1
        self.scrapes += 1
        self.samples_total += appended
        self.last_ts = ts
        # Self-accounting happens after the sweep so a scrape never
        # mutates the families it is iterating.
        self.obs.scrape(appended)
        for name, count in drops.items():
            self.dropped_total += count
            self.obs.dropped(name, count)
        self.obs.series_count(len(self.series))
        return appended

    # -- lookup --------------------------------------------------------------

    def names(self) -> List[str]:
        """Distinct metric names seen so far, sorted."""
        return sorted({s.name for s in self.series.values()})

    def select(self, name: str,
               labels: Optional[Dict[str, str]] = None) -> List[Series]:
        """Series for ``name`` whose labels are a superset of ``labels``."""
        want = labels or {}
        out = []
        for series in self.series.values():
            if series.name != name:
                continue
            have = dict(series.labels)
            if all(have.get(k) == v for k, v in want.items()):
                out.append(series)
        return out

    def latest(self, name: str,
               labels: Optional[Dict[str, str]] = None) -> Optional[float]:
        """Most recent value (summed across matching series); None if no
        matching series holds a point.  Histograms report their count."""
        matched = [s for s in self.select(name, labels) if s.points]
        if not matched:
            return None
        total = 0.0
        for series in matched:
            total += series.points[-1][1]
        return total

    # -- windowed queries ----------------------------------------------------

    def delta(self, name: str, labels: Optional[Dict[str, str]] = None,
              window: Optional[float] = None) -> float:
        """Increase over ``window`` (newest minus oldest in-window point),
        summed across matching series.  The right verb for counters."""
        total = 0.0
        for series in self.select(name, labels):
            points = series.window(window)
            if len(points) >= 2:
                total += points[-1][1] - points[0][1]
        return total

    def rate(self, name: str, labels: Optional[Dict[str, str]] = None,
             window: Optional[float] = None) -> float:
        """Per-second increase over ``window``, summed across series."""
        total = 0.0
        for series in self.select(name, labels):
            points = series.window(window)
            if len(points) >= 2:
                elapsed = points[-1][0] - points[0][0]
                if elapsed > 0:
                    total += (points[-1][1] - points[0][1]) / elapsed
        return total

    def gauge_percentile(self, name: str, q: float,
                         labels: Optional[Dict[str, str]] = None,
                         window: Optional[float] = None) -> float:
        """Linear-interp percentile of a gauge's in-window values."""
        values: List[float] = []
        for series in self.select(name, labels):
            values.extend(p[1] for p in series.window(window))
        return percentile_linear(values, q)

    def window_percentile(self, name: str, q: float,
                          labels: Optional[Dict[str, str]] = None,
                          window: Optional[float] = None) -> float:
        """Latency quantile of a histogram over ``window``.

        Differences the first and last in-window points of each matching
        series, sums the per-bucket increments across series, and runs
        the shared :func:`histogram_quantile` estimate — the store-side
        twin of PromQL's ``histogram_quantile(q, rate(..._bucket))``.
        """
        bounds: Optional[Tuple[float, ...]] = None
        deltas: Optional[List[float]] = None
        for series in self.select(name, labels):
            if series.kind != "histogram" or series.bounds is None:
                continue
            points = series.window(window)
            if len(points) < 2:
                # A single point still carries cumulative state: measure
                # from zero so short runs are queryable.
                if len(points) == 1:
                    first: tuple = (points[0][0], 0, 0.0,
                                    tuple(0 for _ in points[0][3]))
                    points = [first, points[0]]
                else:
                    continue
            if bounds is None:
                bounds = series.bounds
                deltas = [0.0] * len(points[-1][3])
            if series.bounds != bounds or deltas is None:
                continue
            for i, (newest, oldest) in enumerate(zip(points[-1][3],
                                                     points[0][3])):
                deltas[i] += newest - oldest
        if bounds is None or deltas is None:
            return 0.0
        return histogram_quantile(q, bounds, deltas)

    def trajectory(self, name: str,
                   labels: Optional[Dict[str, str]] = None
                   ) -> List[Tuple[float, float]]:
        """The (ts, value) polyline of a series for plotting, summed
        across matching series at identical timestamps."""
        merged: Dict[float, float] = {}
        for series in self.select(name, labels):
            for point in series.points:
                merged[point[0]] = merged.get(point[0], 0.0) + point[1]
        return sorted(merged.items())

    def snapshot(self) -> dict:
        """The store as plain data (the dashboard/JSON artifact payload)."""
        series = []
        for key in sorted(self.series, key=lambda k: (k[0], k[1])):
            s = self.series[key]
            entry: dict = {
                "name": s.name,
                "labels": dict(s.labels),
                "kind": s.kind,
                "dropped": s.dropped,
            }
            if s.kind == "histogram":
                entry["bounds"] = list(s.bounds or ())
                entry["points"] = [
                    {"ts": p[0], "count": p[1], "sum": p[2],
                     "buckets": list(p[3])}
                    for p in s.points
                ]
            else:
                entry["points"] = [[p[0], p[1]] for p in s.points]
            series.append(entry)
        return {
            "interval": self.interval,
            "scrapes": self.scrapes,
            "samples": self.samples_total,
            "dropped": self.dropped_total,
            "series": series,
        }
