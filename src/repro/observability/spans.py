"""Request-scoped distributed tracing over simulated time.

The paper's analysis lives in per-request breakdowns — Fig. 13 splits a
single write-to-rank into Page/Ser/Int/Deser/T-data steps and Fig. 16
shows per-rank completion timing — but aggregate metrics cannot answer
"which layer ate the latency of *this* request?".  This module adds the
span model that can: a :class:`Span` carries a :class:`SpanContext`
(trace_id, span_id, parent_id) plus a stack layer, and a
:class:`SpanRecorder` threads that context through every seam of the
stack (session → SDK → frontend → virtio → backend → rank, plus the
cluster control plane and fault recovery).

Two properties are non-negotiable and shape the design:

- **No clock writes.**  Hardware, frontend and backend methods *return*
  durations; the SDK advances the clock once per logical operation.
  Spans therefore never read ``clock.now`` mid-operation — each open
  span keeps a *cursor* that children advance by their modeled
  durations, so nested spans are exact even though the clock has not
  moved yet.  Only root/scope spans (session runs, cluster actions)
  anchor on the clock, because the clock genuinely advances there.
- **Bounded memory.**  Spans buffer per active trace (capped), finished
  traces are retained per a deterministic head-sampling decision
  (``sample_rate``; faulted traces are always kept), and the retained
  list itself is capped.  Every drop increments a ``repro_span_*``
  counter, so counters stay exact even at ``sample_rate=0``.
"""

from __future__ import annotations

import json
import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.observability.instruments import SpanInstruments
from repro.observability.logs import TraceLogger
from repro.observability.metrics import MetricsRegistry
from repro.observability.stats import DecayedMean

#: Stack layers, in top-down order.  The Perfetto export gives each its
#: own named track; :func:`~repro.observability.critical_path.
#: layer_self_times` reports per-layer self-time against this list.
LAYERS = ("session", "sdk", "frontend", "virtio", "backend", "rank",
          "paging", "cluster", "faults")

#: Per-rank Perfetto tracks start at this tid (`rank N` → RANK_TID_BASE+N).
RANK_TID_BASE = 100


@dataclass(frozen=True, slots=True)
class SpanContext:
    """Identity of one span: which trace it belongs to and its parent.

    This is what *propagates* across layer seams: a backend span's
    ``parent_id`` is the frontend request span that caused it, and a
    recovery rerun reuses the failed attempt's ``trace_id``.
    """

    trace_id: str
    span_id: int
    parent_id: Optional[int] = None


@dataclass(slots=True)
class Span:
    """One timed unit of work on the simulated timeline.

    ``duration`` stores the *modeled* duration exactly as the layer
    reported it (not ``end - start``, which floats may round), so
    span-derived sums match the profiler's bit-for-bit.
    """

    context: SpanContext
    name: str
    layer: str
    start: float
    end: Optional[float] = None
    duration: Optional[float] = None
    attributes: Dict[str, object] = field(default_factory=dict)
    links: List[Dict[str, object]] = field(default_factory=list)
    depth: int = 0
    #: Where the next child starts (advanced as children complete).
    cursor: float = 0.0

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> int:
        return self.context.span_id

    @property
    def parent_id(self) -> Optional[int]:
        return self.context.parent_id

    def link(self, kind: str, span_id: int) -> None:
        """Attach a causal link that is not a parent edge (e.g. a flush
        span linking the batched writes it absorbed, or a recovery rerun
        linking the attempt it retries)."""
        self.links.append({"kind": kind, "span_id": span_id})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name}, {self.layer}, id={self.span_id}, "
                f"parent={self.parent_id}, [{self.start}, {self.end}])")


@dataclass
class Trace:
    """One finished trace: a root span and everything beneath it."""

    trace_id: str
    spans: List[Span] = field(default_factory=list)
    root: Optional[Span] = None
    faulted: bool = False
    sampled: bool = True
    #: Why the trace was retained: ``fault`` / ``tail`` / ``head``, or
    #: ``""`` for traces that no tier claimed (discarded).
    retention: str = ""
    #: Spans not buffered because the per-trace cap was hit.
    dropped_spans: int = 0

    def by_layer(self, layer: str) -> List[Span]:
        return [s for s in self.spans if s.layer == layer]

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def span(self, span_id: int) -> Optional[Span]:
        for s in self.spans:
            if s.span_id == span_id:
                return s
        return None

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def __len__(self) -> int:
        return len(self.spans)


class SpanRecorder:
    """Records span trees against a simulated clock.

    One recorder is shared machine-wide (``machine.spans``, like the
    clock and the metrics registry) or fleet-wide (``cluster.spans``),
    so context propagates across hosts the same way the shared
    :class:`~repro.hardware.clock.SimClock` does.

    API sketch::

        root = spans.begin("session.run", "session", start=clock.now)
        req = spans.begin("frontend.request", "frontend")   # at cursor
        spans.event("frontend.serialize", "frontend", ser_time)
        spans.end(req, duration=total)                      # exact
        spans.end(root, end=clock.now)
    """

    def __init__(self, clock, sample_rate: float = 1.0,
                 max_spans_per_trace: int = 100_000,
                 max_traces: int = 256,
                 registry: Optional[MetricsRegistry] = None,
                 tail_sampling: bool = False,
                 tail_factor: float = 2.0,
                 tail_min_samples: int = 8,
                 tail_decay: float = 0.3,
                 capture_exemplars: bool = False) -> None:
        self.clock = clock
        self.sample_rate = sample_rate
        self.max_spans_per_trace = max_spans_per_trace
        self.max_traces = max_traces
        #: Tail-based retention (off by default so replays stay
        #: byte-identical): a finished trace whose root duration exceeds
        #: ``tail_factor`` times the decayed mean of its root layer's
        #: recent durations is kept even if head sampling discarded it.
        self.tail_sampling = tail_sampling
        self.tail_factor = tail_factor
        self.tail_min_samples = tail_min_samples
        self.tail_decay = tail_decay
        self._tail_baseline: Dict[str, DecayedMean] = {}
        #: Hand out histogram exemplars?  Off by default: exemplar
        #: suffixes change the exported snapshot text, and default runs
        #: must stay bit-identical to pre-telemetry builds.
        self.capture_exemplars = capture_exemplars
        self.obs = SpanInstruments(registry) if registry is not None else None
        #: Finished traces that survived sampling/caps, oldest first.
        self.traces: List[Trace] = []
        #: Root span of the most recently finished trace (retained or
        #: not) — what recovery links ``retry_of`` against.
        self.last_root: Optional[Span] = None
        #: Trace-correlated structured logging (JSONL).
        self.log = TraceLogger(self)
        self.spans_started = 0
        self.spans_dropped: Dict[str, int] = {}
        self.traces_finished = 0
        self.traces_retained = 0
        self._stack: List[Span] = []
        self._trace: Optional[Trace] = None
        self._last_finished: Optional[Trace] = None
        self._last_kept = False
        self._span_ids = 0
        self._trace_seq = 0
        self._trace_ids = 0
        self._pin: Optional[Dict[str, object]] = None

    # -- identity ------------------------------------------------------------

    def _next_span_id(self) -> int:
        self._span_ids += 1
        return self._span_ids

    def _next_trace_id(self) -> str:
        self._trace_ids += 1
        return f"trace-{self._trace_ids:06d}"

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any trace."""
        return self._stack[-1] if self._stack else None

    # -- sampling ------------------------------------------------------------

    def _sample_next(self) -> bool:
        """Deterministic systematic head sampling: keep trace *n* iff the
        integer part of ``n * rate`` advanced — no RNG, so replays are
        byte-identical (the chaos-digest contract)."""
        rate = min(max(self.sample_rate, 0.0), 1.0)
        self._trace_seq += 1
        n = self._trace_seq
        return math.floor(n * rate) > math.floor((n - 1) * rate)

    def next_trace(self, trace_id: Optional[str] = None,
                   retry_of: Optional[int] = None,
                   faulted: bool = False) -> None:
        """Pin the identity of the *next* root span.

        Recovery uses this so a rerun session carries the failed
        attempt's ``trace_id`` with a ``retry_of`` link, and is retained
        regardless of sampling (``faulted=True``)."""
        self._pin = {"trace_id": trace_id, "retry_of": retry_of,
                     "faulted": faulted}

    # -- recording -----------------------------------------------------------

    def _buffer(self, span: Span) -> None:
        self.spans_started += 1
        if self.obs is not None:
            self.obs.started(span.layer)
        trace = self._trace
        if trace is None:
            return
        if len(trace.spans) >= self.max_spans_per_trace:
            trace.dropped_spans += 1
            self._drop("span_cap")
            return
        trace.spans.append(span)

    def _drop(self, reason: str, count: int = 1) -> None:
        self.spans_dropped[reason] = self.spans_dropped.get(reason, 0) + count
        if self.obs is not None:
            self.obs.dropped(reason, count)

    def begin(self, name: str, layer: str, start: Optional[float] = None,
              **attributes: object) -> Span:
        """Open a span.  With an open parent, ``start`` defaults to the
        parent's cursor (duration-returning layers); with an empty stack
        a new trace begins and ``start`` defaults to ``clock.now``."""
        if self._stack:
            parent = self._stack[-1]
            context = SpanContext(trace_id=parent.trace_id,
                                  span_id=self._next_span_id(),
                                  parent_id=parent.span_id)
            if start is None:
                start = parent.cursor
        else:
            pin = self._pin
            self._pin = None
            trace_id = (pin or {}).get("trace_id") or self._next_trace_id()
            context = SpanContext(trace_id=trace_id,
                                  span_id=self._next_span_id())
            if start is None:
                start = self.clock.now
            self._trace = Trace(trace_id=trace_id,
                                sampled=self._sample_next(),
                                faulted=bool((pin or {}).get("faulted")))
            span = Span(context=context, name=name, layer=layer, start=start,
                        attributes=attributes, depth=0, cursor=start)
            if pin and pin.get("retry_of") is not None:
                span.link("retry_of", pin["retry_of"])  # type: ignore[arg-type]
            self._trace.root = span
            self._buffer(span)
            self._stack.append(span)
            return span
        span = Span(context=context, name=name, layer=layer, start=start,
                    attributes=attributes, depth=len(self._stack),
                    cursor=start)
        self._buffer(span)
        self._stack.append(span)
        return span

    def event(self, name: str, layer: str, duration: float,
              start: Optional[float] = None,
              **attributes: object) -> Optional[Span]:
        """Record a completed child span of exactly ``duration`` under
        the innermost open span, advancing its cursor.

        No-op outside a trace (e.g. bare hardware unit tests), so layers
        can call this unconditionally on their hot path."""
        if not self._stack:
            return None
        parent = self._stack[-1]
        if start is None:
            start = parent.cursor
        span = Span(context=SpanContext(trace_id=parent.trace_id,
                                        span_id=self._next_span_id(),
                                        parent_id=parent.span_id),
                    name=name, layer=layer, start=start,
                    end=start + duration, duration=duration,
                    attributes=attributes, depth=len(self._stack),
                    cursor=start + duration)
        parent.cursor = max(parent.cursor, span.end)
        self._buffer(span)
        return span

    def end(self, span: Optional[Span], end: Optional[float] = None,
            duration: Optional[float] = None, **attributes: object) -> None:
        """Close ``span``.  Precedence: explicit ``duration`` (exact) >
        explicit ``end`` > the span's cursor (sum of its children).

        Still-open descendants (an exception unwound past them) are
        closed at their cursors and flagged ``abandoned`` so one failed
        request cannot corrupt the stack for the rest of the run."""
        if span is None:
            return
        if span not in self._stack:
            return
        while self._stack and self._stack[-1] is not span:
            inner = self._stack.pop()
            if inner.end is None:
                inner.end = inner.cursor
                inner.duration = inner.end - inner.start
                inner.attributes["abandoned"] = True
        self._stack.pop()
        if duration is not None:
            span.duration = duration
            span.end = span.start + duration
        elif end is not None:
            span.end = end
            span.duration = end - span.start
        else:
            span.end = span.cursor
            span.duration = span.end - span.start
        span.attributes.update(attributes)
        if self._stack:
            parent = self._stack[-1]
            parent.cursor = max(parent.cursor, span.end)
        else:
            self._finish_trace()

    def rewind(self, span: Span) -> None:
        """Reset ``span``'s cursor to its start, so the next child
        overlaps the previous ones — how the SDK lays out per-rank
        siblings of one parallel operation (Fig. 16)."""
        span.cursor = span.start

    @contextmanager
    def scope(self, name: str, layer: str,
              **attributes: object) -> Iterator[Span]:
        """Span over a clock-advancing region (session runs, cluster
        placement/migration): starts and ends at ``clock.now``."""
        span = self.begin(name, layer, start=self.clock.now, **attributes)
        try:
            yield span
        finally:
            self.end(span, end=max(self.clock.now, span.cursor))

    def mark_fault(self, kind: str) -> None:
        """Flag the active trace as faulted: it is retained regardless of
        the sampling decision (you always want the timeline of the
        request that went wrong)."""
        trace = self._trace
        if trace is None:
            return
        trace.faulted = True
        if trace.root is not None:
            faults = trace.root.attributes.setdefault("faults", [])
            if isinstance(faults, list):
                faults.append(kind)

    def _classify(self, trace: Trace) -> str:
        """Retention tier of a finished trace, decided at *finish* time.

        ``fault`` always wins; ``tail`` claims traces whose root duration
        stands out against the decayed per-layer baseline (only after the
        baseline has seen ``tail_min_samples`` roots, so a cold start
        cannot mark everything an outlier); ``head`` is the fallback tier
        the start-time sampling decision feeds.  The baseline is scored
        *before* it absorbs this root — a trace is compared against its
        history, not against itself — and faulted roots never feed it
        (recovery reruns would drag the mean up and mask real outliers).
        """
        tier = ""
        root = trace.root
        duration = root.duration if root is not None else None
        if trace.faulted:
            tier = "fault"
        elif (self.tail_sampling and duration is not None
                and root is not None):
            baseline = self._tail_baseline.get(root.layer)
            if baseline is None:
                baseline = DecayedMean(self.tail_decay)
                self._tail_baseline[root.layer] = baseline
            if (baseline.n >= self.tail_min_samples
                    and duration > self.tail_factor * baseline.mean):
                tier = "tail"
        if (not trace.faulted and self.tail_sampling
                and duration is not None and root is not None):
            self._tail_baseline[root.layer].update(duration)
        if not tier and trace.sampled:
            tier = "head"
        return tier

    def _finish_trace(self) -> None:
        trace = self._trace
        self._trace = None
        if trace is None:  # pragma: no cover - defensive
            return
        self.traces_finished += 1
        self.last_root = trace.root
        tier = self._classify(trace)
        trace.retention = tier
        keep = bool(tier)
        if keep and len(self.traces) >= self.max_traces:
            self._drop("trace_cap", len(trace.spans))
            keep = False
        if keep:
            if self.tail_sampling and trace.root is not None:
                trace.root.attributes["retention"] = tier
            self.traces.append(trace)
            self.traces_retained += 1
        self._last_finished = trace
        self._last_kept = keep
        if self.obs is not None:
            self.obs.trace(retained=keep)
            if self.tail_sampling:
                self.obs.retention(tier or "none")

    def mark_last_faulted(self, kind: str) -> None:
        """Retroactively flag the most recently finished trace as faulted.

        Recovery only learns about some failures after the session root
        closed (an exception unwinding past it, a failed ``verify``), so
        the faulted-always-retained guarantee needs this post-hoc path:
        the trace is flagged and, if head sampling had discarded it,
        retained after the fact.  The ``repro_span_traces_total`` counter
        keeps its finish-time label — only the internal retention changes.
        """
        trace = self._last_finished
        if trace is None:
            return
        trace.faulted = True
        trace.retention = "fault"
        if trace.root is not None:
            faults = trace.root.attributes.setdefault("faults", [])
            if isinstance(faults, list):
                faults.append(kind)
            if self.tail_sampling:
                trace.root.attributes["retention"] = "fault"
        if not self._last_kept:
            if len(self.traces) >= self.max_traces:
                self._drop("trace_cap", len(trace.spans))
            else:
                self.traces.append(trace)
                self.traces_retained += 1
                self._last_kept = True

    # -- queries -------------------------------------------------------------

    def exemplar(self) -> Optional[Tuple[str, float]]:
        """``(trace_id, sim_ts)`` of the active trace, or ``None``.

        This is what histogram instrumentation attaches to an
        observation so the bucket it lands in carries a pointer back to
        the request that produced it (OpenMetrics exemplars).  The
        timestamp is the innermost open span's cursor — the simulated
        instant the observed operation completed at.  Returns ``None``
        unless ``capture_exemplars`` is on (the monitor pipeline enables
        it; default runs keep exemplar-free snapshots)."""
        if not self.capture_exemplars:
            return None
        span = self.current
        if span is None:
            return None
        return (span.trace_id, span.cursor)

    def latest(self) -> Optional[Trace]:
        """The most recently retained trace."""
        return self.traces[-1] if self.traces else None

    def traces_for(self, trace_id: str) -> List[Trace]:
        """All retained traces sharing ``trace_id`` (recovery attempts)."""
        return [t for t in self.traces if t.trace_id == trace_id]

    def clear(self) -> None:
        """Drop retained traces (between independent experiment runs)."""
        self.traces.clear()

    # -- Perfetto export -----------------------------------------------------

    def _tid_of(self, span: Span) -> int:
        rank = span.attributes.get("rank")
        if span.layer == "rank" and isinstance(rank, int):
            return RANK_TID_BASE + rank
        try:
            return LAYERS.index(span.layer) + 1
        except ValueError:
            return len(LAYERS) + 1

    def to_perfetto(self) -> Dict[str, object]:
        """Chrome trace-event JSON with nested spans on named tracks.

        Emits ``M`` metadata events naming the process and one thread
        per layer (plus one per rank), ``X`` complete events for every
        span, and ``s``/``f`` flow events binding each backend span to
        the frontend request that caused it — the guest→VMM causality
        Perfetto draws as arrows across tracks."""
        events: List[Dict[str, object]] = []
        tids: Dict[int, str] = {}
        for trace in self.traces:
            spans_by_id = {s.span_id: s for s in trace.spans}
            for span in trace.spans:
                if span.end is None:
                    continue
                tid = self._tid_of(span)
                rank = span.attributes.get("rank")
                if span.layer == "rank" and isinstance(rank, int):
                    tids[tid] = f"rank {rank}"
                else:
                    tids.setdefault(tid, span.layer)
                args: Dict[str, object] = {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                }
                if span.parent_id is not None:
                    args["parent_id"] = span.parent_id
                args.update(span.attributes)
                if span.links:
                    args["links"] = list(span.links)
                events.append({
                    "name": span.name, "cat": span.layer, "ph": "X",
                    "ts": span.start * 1e6, "dur": span.duration * 1e6,
                    "pid": 1, "tid": tid, "args": args,
                })
                parent = (spans_by_id.get(span.parent_id)
                          if span.parent_id is not None else None)
                if span.layer == "backend" and parent is not None:
                    flow = {"cat": "flow", "name": "request",
                            "id": span.span_id, "pid": 1}
                    events.append({**flow, "ph": "s",
                                   "tid": self._tid_of(parent),
                                   "ts": span.start * 1e6})
                    events.append({**flow, "ph": "f", "bp": "e", "tid": tid,
                                   "ts": span.start * 1e6})
        metadata: List[Dict[str, object]] = [{
            "name": "process_name", "ph": "M", "pid": 1,
            "args": {"name": "vPIM simulation"},
        }]
        for tid in sorted(tids):
            metadata.append({"name": "thread_name", "ph": "M", "pid": 1,
                             "tid": tid, "args": {"name": tids[tid]}})
        for tid in sorted(tids):
            metadata.append({"name": "thread_sort_index", "ph": "M", "pid": 1,
                             "tid": tid, "args": {"sort_index": tid}})
        return {
            "traceEvents": events + metadata,
            "displayTimeUnit": "ms",
            "otherData": {
                "traces_retained": len(self.traces),
                "traces_finished": self.traces_finished,
                "spans_dropped": dict(self.spans_dropped),
            },
        }

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_perfetto(), handle)
