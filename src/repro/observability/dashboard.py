"""Self-contained HTML dashboard for ``repro monitor`` results.

One file, zero dependencies, zero network: inline CSS custom properties
(light and dark from ``prefers-color-scheme``), inline SVG sparklines,
an alert timeline, and the exemplar-trace tables.  Everything plotted is
simulated time, so the file is a deterministic artifact of the run.

Design rules applied throughout (they are checks, not taste):

- single-series sparklines — identity comes from the card title, so no
  legend; multi-entity comparisons are tables, not dual axes;
- text wears ink tokens, never series color; numbers use tabular-nums;
- alert states use the reserved status palette and always carry a text
  label next to the color;
- every SVG ships a ``<title>`` per point region for hover inspection
  and the same data appears in a table, so nothing is color- or
  hover-only.
"""

from __future__ import annotations

import html
from typing import List, Optional, Sequence, Tuple

#: Categorical slot 1 (validated palette): the only series color used —
#: every sparkline is single-series.
SERIES_LIGHT = "#2a78d6"
SERIES_DARK = "#3987e5"

#: Reserved status colors (light-mode steps; readable on both surfaces).
STATUS = {
    "inactive": "var(--ink-muted)",
    "pending": "#fab219",
    "firing": "#d03b3b",
    "resolved": "#0ca30c",
}

_CSS = """
:root {
  --surface: #fcfcfb;
  --ink: #0b0b0b;
  --ink-secondary: #52514e;
  --ink-muted: #898781;
  --gridline: #e1e0d9;
  --series: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19;
    --ink: #ffffff;
    --ink-secondary: #c3c2b7;
    --ink-muted: #898781;
    --gridline: #2c2c2a;
    --series: #3987e5;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 24px 0 8px; }
h3 { font-size: 13px; font-weight: 600; margin: 0 0 2px;
     color: var(--ink-secondary); }
.meta { color: var(--ink-secondary); margin-bottom: 16px; }
.meta code { color: var(--ink); }
.cards { display: flex; flex-wrap: wrap; gap: 16px; }
.card {
  border: 1px solid var(--gridline); border-radius: 8px;
  padding: 12px 14px; min-width: 260px;
}
.stat { font-size: 22px; font-weight: 600;
        font-variant-numeric: tabular-nums; }
.stat-label { color: var(--ink-muted); font-size: 12px; }
table { border-collapse: collapse; margin: 8px 0; width: 100%; }
th, td { text-align: left; padding: 4px 10px 4px 0;
         border-bottom: 1px solid var(--gridline); }
th { color: var(--ink-secondary); font-weight: 600; font-size: 12px; }
td { font-variant-numeric: tabular-nums; }
td.num { text-align: right; }
.spark polyline { fill: none; stroke: var(--series); stroke-width: 2; }
.spark .grid { stroke: var(--gridline); stroke-width: 1; }
.spark text { fill: var(--ink-muted); font-size: 10px; }
.state { display: inline-flex; align-items: center; gap: 6px; }
.dot { width: 8px; height: 8px; border-radius: 50%; display: inline-block; }
.bar-track { background: var(--gridline); border-radius: 2px;
             height: 8px; width: 120px; display: inline-block; }
.bar-fill { background: var(--series); border-radius: 2px; height: 8px;
            display: block; }
.timeline rect { rx: 2; }
.timeline text { fill: var(--ink-secondary); font-size: 11px; }
.footnote { color: var(--ink-muted); font-size: 12px; margin-top: 24px; }
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _fmt(value: float, digits: int = 3) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) < 0.001:
        return f"{value:.2e}"
    return f"{value:.{digits}g}"


def sparkline(points: Sequence[Sequence[float]], width: int = 240,
              height: int = 48, label: str = "") -> str:
    """One inline SVG sparkline: a thin 2px line, a baseline gridline,
    min/max text in ink tokens, and a hover ``<title>`` with the range.

    Returns an empty-state note when there are fewer than two points —
    never an axis with nothing on it.
    """
    pts = [(float(p[0]), float(p[1])) for p in points]
    if len(pts) < 2:
        return '<div class="stat-label">(not enough points)</div>'
    t0, t1 = pts[0][0], pts[-1][0]
    lo = min(v for _, v in pts)
    hi = max(v for _, v in pts)
    pad = 4
    span_t = (t1 - t0) or 1.0
    span_v = (hi - lo) or 1.0
    coords = []
    for t, v in pts:
        x = pad + (t - t0) / span_t * (width - 2 * pad)
        y = height - pad - (v - lo) / span_v * (height - 2 * pad - 12)
        coords.append(f"{x:.1f},{y:.1f}")
    title = (f"{_esc(label)}: {_fmt(lo)} to {_fmt(hi)} over "
             f"{_fmt(t1 - t0)}s simulated")
    return (
        f'<svg class="spark" role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f"<title>{title}</title>"
        f'<line class="grid" x1="{pad}" y1="{height - pad}" '
        f'x2="{width - pad}" y2="{height - pad}"/>'
        f'<polyline points="{" ".join(coords)}"/>'
        f'<text x="{pad}" y="10">max {_fmt(hi)}</text>'
        f'<text x="{width - pad}" y="10" text-anchor="end">'
        f"min {_fmt(lo)}</text>"
        "</svg>"
    )


def alert_timeline(rules: List[dict], t_end: float,
                   width: int = 560) -> str:
    """Per-rule state bands over simulated time.

    Each rule gets one row; colored segments show the state between
    transitions, and every segment carries a ``<title>``.  States are
    also listed textually in the alerts table, so the color is never the
    only encoding.
    """
    rows = [r for r in rules if r["transitions"]]
    if not rows:
        return ('<div class="stat-label">no alert transitions — every '
                "rule stayed inactive</div>")
    row_h, gap, label_w = 18, 8, 150
    height = len(rows) * (row_h + gap) + 16
    t_max = max(t_end, max(t["ts"] for r in rows for t in r["transitions"]))
    t_max = t_max or 1.0
    parts = [
        f'<svg class="timeline" role="img" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
    ]
    plot_w = width - label_w - 8
    for i, rule in enumerate(rows):
        y = i * (row_h + gap) + 12
        parts.append(f'<text x="0" y="{y + row_h - 5}">'
                     f'{_esc(rule["name"])}</text>')
        # Walk the transitions into (start, end, state) segments.
        segments: List[Tuple[float, float, str]] = []
        state, start = "inactive", 0.0
        for t in rule["transitions"]:
            segments.append((start, t["ts"], state))
            state, start = t["to"], t["ts"]
        segments.append((start, t_max, state))
        for seg_start, seg_end, seg_state in segments:
            if seg_end <= seg_start:
                continue
            x = label_w + seg_start / t_max * plot_w
            w = max((seg_end - seg_start) / t_max * plot_w, 1.5)
            color = STATUS.get(seg_state, "var(--ink-muted)")
            opacity = "0.35" if seg_state == "inactive" else "1"
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
                f'height="{row_h}" fill="{color}" opacity="{opacity}">'
                f"<title>{_esc(rule['name'])}: {seg_state} "
                f"[{_fmt(seg_start)}s – {_fmt(seg_end)}s]</title></rect>")
    parts.append("</svg>")
    return "".join(parts)


def _state_chip(state: str) -> str:
    color = STATUS.get(state, "var(--ink-muted)")
    return (f'<span class="state"><span class="dot" '
            f'style="background:{color}"></span>{_esc(state)}</span>')


def _scenario_section(telemetry: dict) -> str:
    parts = [f"<h2>{_esc(telemetry['name'])}</h2>"]
    parts.append(
        '<div class="cards">'
        f'<div class="card"><div class="stat">'
        f"{_fmt(telemetry['makespan_s'])}s</div>"
        '<div class="stat-label">simulated makespan</div></div>'
        f'<div class="card"><div class="stat">{telemetry["scrapes"]}</div>'
        '<div class="stat-label">scrapes</div></div>'
        f'<div class="card"><div class="stat">{telemetry["series"]}</div>'
        '<div class="stat-label">series</div></div>'
        f'<div class="card"><div class="stat">{telemetry["dropped"]}</div>'
        '<div class="stat-label">dropped points</div></div>'
        "</div>")

    if telemetry["trajectories"]:
        parts.append('<div class="cards">')
        for name, points in sorted(telemetry["trajectories"].items()):
            parts.append(
                f'<div class="card"><h3>{_esc(name)}</h3>'
                f"{sparkline(points, label=name)}</div>")
        parts.append("</div>")

    alerts = telemetry.get("alerts") or {}
    rules = alerts.get("rules", [])
    if rules:
        parts.append("<h3>alerts</h3>")
        parts.append(alert_timeline(rules, telemetry["makespan_s"]))
        parts.append(
            "<table><tr><th>rule</th><th>kind</th><th>metric</th>"
            "<th>state</th><th>last value</th><th>transitions</th></tr>")
        for rule in rules:
            parts.append(
                f"<tr><td>{_esc(rule['name'])}</td>"
                f"<td>{_esc(rule['kind'])}</td>"
                f"<td><code>{_esc(rule['metric'])}</code></td>"
                f"<td>{_state_chip(rule['state'])}</td>"
                f"<td class=\"num\">{_fmt(rule['last_value'])}</td>"
                f"<td class=\"num\">{len(rule['transitions'])}</td></tr>")
        parts.append("</table>")

    if telemetry.get("exemplars"):
        parts.append("<h3>exemplars (worst observation per family)</h3>")
        parts.append("<table><tr><th>histogram</th><th>count</th>"
                     "<th>worst trace</th><th>value</th></tr>")
        for name, info in sorted(telemetry["exemplars"].items()):
            worst = info.get("worst") or {}
            parts.append(
                f"<tr><td><code>{_esc(name)}</code></td>"
                f"<td class=\"num\">{info['count']}</td>"
                f"<td><code>{_esc(worst.get('trace_id', '-'))}</code></td>"
                f"<td class=\"num\">{_fmt(worst.get('value', 0.0))}s</td>"
                "</tr>")
        parts.append("</table>")

    if telemetry.get("traces"):
        parts.append("<h3>slowest retained traces</h3>")
        longest = max(t["duration_s"] for t in telemetry["traces"]) or 1.0
        parts.append("<table><tr><th>trace</th><th>retention</th>"
                     "<th>duration</th><th></th>"
                     "<th>critical path by layer</th></tr>")
        for trace in telemetry["traces"]:
            share = trace["duration_s"] / longest
            layers = ", ".join(
                f"{layer} {_fmt(seconds * 1e3)}ms"
                for layer, seconds in sorted(
                    trace["layers"].items(), key=lambda kv: -kv[1])[:4])
            parts.append(
                f"<tr><td><code>{_esc(trace['trace_id'])}</code></td>"
                f"<td>{_esc(trace['retention'] or 'head')}"
                f"{' (faulted)' if trace.get('faulted') else ''}</td>"
                f"<td class=\"num\">{_fmt(trace['duration_s'] * 1e3)}ms</td>"
                f'<td><span class="bar-track"><span class="bar-fill" '
                f'style="width:{share * 100:.0f}%"></span></span></td>'
                f"<td>{_esc(layers)}</td></tr>")
        parts.append("</table>")

    if telemetry.get("retention_counts"):
        counts = ", ".join(f"{tier}: {n}" for tier, n in sorted(
            telemetry["retention_counts"].items()))
        parts.append(f'<div class="stat-label">trace retention — '
                     f"{_esc(counts)}</div>")
    return "".join(parts)


def _tail_demo_section(demo: Optional[dict]) -> str:
    if not demo:
        return ""
    verdict = ("tail retention kept every slowest-decile trace that head "
               "sampling dropped"
               if demo["slowest_kept_by_tail"]
               and demo["slowest_dropped_by_head"]
               else "tail-vs-head demonstration did NOT hold on this run")
    rows = []
    head = set(demo["head_retained"])
    tiers = demo.get("tail_tiers", {})
    slowest = set(demo["slowest_decile"])
    for trace_id, duration in demo["root_durations"]:
        rows.append(
            f"<tr><td><code>{_esc(trace_id)}</code></td>"
            f"<td class=\"num\">{_fmt(duration * 1e3)}ms</td>"
            f"<td>{'yes' if trace_id in slowest else ''}</td>"
            f"<td>{'kept' if trace_id in head else 'dropped'}</td>"
            f"<td>{_esc(tiers.get(trace_id, 'dropped'))}</td></tr>")
    return (
        "<h2>tail-vs-head retention</h2>"
        f'<div class="meta">{_esc(verdict)} '
        f"(budget {demo['sample_rate']:g}, "
        f"{demo['sessions']} sessions, contended index "
        f"{demo['slow_index']}).</div>"
        "<table><tr><th>trace</th><th>root duration</th>"
        "<th>slowest decile</th><th>head arm</th><th>tail arm</th></tr>"
        + "".join(rows) + "</table>")


def _drill_section(drill: Optional[dict]) -> str:
    if not drill:
        return ""
    rows = "".join(
        f"<tr><td class=\"num\">{_fmt(t['ts'])}s</td>"
        f"<td>{_esc(t['rule'])}</td><td>{_state_chip(t['from'])}</td>"
        f"<td>{_state_chip(t['to'])}</td></tr>"
        for t in drill["transitions"])
    ok = (drill["visited_pending"] and drill["visited_firing"]
          and drill["visited_resolved"])
    verdict = ("the fault-burst rule walked pending, firing and resolved"
               if ok else "the drill did NOT complete the lifecycle")
    return ("<h2>fault drill</h2>"
            f'<div class="meta">{_esc(verdict)}.</div>'
            "<table><tr><th>sim time</th><th>rule</th><th>from</th>"
            f"<th>to</th></tr>{rows}</table>")


def render_dashboard(result_dict: dict) -> str:
    """The full dashboard page for one ``MonitorResult.to_dict()``."""
    families = result_dict.get("exemplar_families", {})
    family_rows = "".join(
        f"<tr><td><code>{_esc(name)}</code></td>"
        f"<td class=\"num\">{count}</td></tr>"
        for name, count in sorted(families.items()))
    body = [
        "<h1>repro monitor</h1>",
        f'<div class="meta">scenario <code>'
        f"{_esc(result_dict['scenario'])}</code> · seed "
        f"{result_dict['seed']} · dropped points "
        f"{result_dict['dropped_points']}</div>",
    ]
    if family_rows:
        body.append("<h2>exemplar coverage</h2>"
                    "<table><tr><th>latency histogram</th>"
                    f"<th>exemplars</th></tr>{family_rows}</table>")
    body.append(_tail_demo_section(result_dict.get("tail_demo")))
    body.append(_drill_section(result_dict.get("drill")))
    for telemetry in result_dict.get("scenarios", []):
        body.append(_scenario_section(telemetry))
    body.append('<div class="footnote">All times are simulated seconds; '
                "the file is a deterministic artifact of the run "
                "(see docs/monitoring.md).</div>")
    return ("<!DOCTYPE html><html lang=\"en\"><head>"
            '<meta charset="utf-8">'
            '<meta name="viewport" content="width=device-width, '
            'initial-scale=1">'
            "<title>repro monitor</title>"
            f"<style>{_CSS}</style></head><body>"
            + "".join(body) + "</body></html>")
