"""Live metrics for the simulated vPIM stack.

The paper explains *where* virtualization time goes (Figs. 12-16); this
package makes those breakdowns observable while a run is in flight
instead of only in post-hoc traces.  See ``docs/observability.md`` for
the full metric catalog and ``docs/architecture.md`` for where each
instrumented layer sits in the stack.

- :mod:`~repro.observability.metrics` — ``Counter`` / ``Gauge`` /
  ``Histogram`` families in a :class:`MetricsRegistry`;
- :mod:`~repro.observability.catalog` — the declared metric set shared by
  code, docs, and tests;
- :mod:`~repro.observability.instruments` — per-component bindings;
- :mod:`~repro.observability.export` — Prometheus-text and JSON
  exporters (``repro metrics`` prints these);
- :mod:`~repro.observability.spans` — request-scoped distributed
  tracing (``Span``/``SpanContext``/``SpanRecorder``) over simulated
  time, with Perfetto export and head-based sampling;
- :mod:`~repro.observability.critical_path` — per-layer self-time and
  critical-path attribution over finished traces;
- :mod:`~repro.observability.logs` — trace-correlated structured JSONL
  logging.
"""

from repro.observability.catalog import CATALOG, instrument, register_all
from repro.observability.export import (
    render_json,
    render_prometheus,
    save_snapshot,
    snapshot_dict,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    MetricFamily,
    MetricsRegistry,
)

# Import order matters: spans pulls in instruments/logs, which need the
# names above bound before any partially-initialized re-entry through
# repro.hardware (machine imports this package).
from repro.observability.critical_path import (  # noqa: E402
    critical_path,
    layer_self_times,
    slowest_spans,
)
from repro.observability.logs import TraceLogger  # noqa: E402
from repro.observability.spans import (  # noqa: E402
    LAYERS,
    Span,
    SpanContext,
    SpanRecorder,
    Trace,
)

__all__ = [
    "CATALOG",
    "DEFAULT_BUCKETS",
    "LAYERS",
    "MetricFamily",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "Trace",
    "TraceLogger",
    "critical_path",
    "instrument",
    "layer_self_times",
    "register_all",
    "render_json",
    "render_prometheus",
    "save_snapshot",
    "slowest_spans",
    "snapshot_dict",
]
