"""Live metrics for the simulated vPIM stack.

The paper explains *where* virtualization time goes (Figs. 12-16); this
package makes those breakdowns observable while a run is in flight
instead of only in post-hoc traces.  See ``docs/observability.md`` for
the full metric catalog and ``docs/architecture.md`` for where each
instrumented layer sits in the stack.

- :mod:`~repro.observability.metrics` — ``Counter`` / ``Gauge`` /
  ``Histogram`` families in a :class:`MetricsRegistry`;
- :mod:`~repro.observability.catalog` — the declared metric set shared by
  code, docs, and tests;
- :mod:`~repro.observability.instruments` — per-component bindings;
- :mod:`~repro.observability.export` — Prometheus-text and JSON
  exporters (``repro metrics`` prints these);
- :mod:`~repro.observability.spans` — request-scoped distributed
  tracing (``Span``/``SpanContext``/``SpanRecorder``) over simulated
  time, with Perfetto export and head-based sampling;
- :mod:`~repro.observability.critical_path` — per-layer self-time and
  critical-path attribution over finished traces;
- :mod:`~repro.observability.logs` — trace-correlated structured JSONL
  logging;
- :mod:`~repro.observability.stats` — the shared percentile /
  decayed-mean math every consumer of "p99" goes through;
- :mod:`~repro.observability.timeseries` — the simulated-time
  time-series store behind ``repro monitor``;
- :mod:`~repro.observability.alerts` — declarative alert rules
  evaluated against the store;
- :mod:`~repro.observability.snapshots` — JSON-snapshot parsing and
  diffing (``repro metrics --diff``);
- :mod:`~repro.observability.dashboard` — the self-contained HTML
  dashboard renderer (see ``docs/monitoring.md``).
"""

from repro.observability.catalog import CATALOG, instrument, register_all
from repro.observability.export import (
    render_json,
    render_prometheus,
    save_snapshot,
    snapshot_dict,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    MetricFamily,
    MetricsRegistry,
)

# Import order matters: spans pulls in instruments/logs, which need the
# names above bound before any partially-initialized re-entry through
# repro.hardware (machine imports this package).
from repro.observability.critical_path import (  # noqa: E402
    critical_path,
    layer_self_times,
    slowest_spans,
)
from repro.observability.logs import TraceLogger  # noqa: E402
from repro.observability.spans import (  # noqa: E402
    LAYERS,
    Span,
    SpanContext,
    SpanRecorder,
    Trace,
)
from repro.observability.alerts import (  # noqa: E402
    AlertRule,
    AlertRuleEngine,
)
from repro.observability.dashboard import render_dashboard  # noqa: E402
from repro.observability.snapshots import (  # noqa: E402
    diff_snapshots,
    format_deltas,
    load_snapshot,
    parse_snapshot,
)
from repro.observability.timeseries import TimeSeriesStore  # noqa: E402

__all__ = [
    "AlertRule",
    "AlertRuleEngine",
    "CATALOG",
    "DEFAULT_BUCKETS",
    "LAYERS",
    "MetricFamily",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "TimeSeriesStore",
    "Trace",
    "TraceLogger",
    "critical_path",
    "diff_snapshots",
    "format_deltas",
    "instrument",
    "layer_self_times",
    "load_snapshot",
    "parse_snapshot",
    "register_all",
    "render_dashboard",
    "render_json",
    "render_prometheus",
    "save_snapshot",
    "slowest_spans",
    "snapshot_dict",
]
