"""Live metrics for the simulated vPIM stack.

The paper explains *where* virtualization time goes (Figs. 12-16); this
package makes those breakdowns observable while a run is in flight
instead of only in post-hoc traces.  See ``docs/observability.md`` for
the full metric catalog and ``docs/architecture.md`` for where each
instrumented layer sits in the stack.

- :mod:`~repro.observability.metrics` — ``Counter`` / ``Gauge`` /
  ``Histogram`` families in a :class:`MetricsRegistry`;
- :mod:`~repro.observability.catalog` — the declared metric set shared by
  code, docs, and tests;
- :mod:`~repro.observability.instruments` — per-component bindings;
- :mod:`~repro.observability.export` — Prometheus-text and JSON
  exporters (``repro metrics`` prints these).
"""

from repro.observability.catalog import CATALOG, instrument, register_all
from repro.observability.export import (
    render_json,
    render_prometheus,
    save_snapshot,
    snapshot_dict,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    MetricFamily,
    MetricsRegistry,
)

__all__ = [
    "CATALOG",
    "DEFAULT_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "instrument",
    "register_all",
    "render_json",
    "render_prometheus",
    "save_snapshot",
    "snapshot_dict",
]
