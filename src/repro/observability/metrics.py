"""Labeled metric primitives: Counter, Gauge, Histogram, and the registry.

This is the live-telemetry counterpart of the paper's post-hoc breakdowns
(Figs. 12-16): every layer of the simulated stack registers instruments
here, observations are *simulated* durations from :class:`~repro.hardware.
clock.SimClock`, and a snapshot can be exported at any point in
Prometheus text or JSON form (:mod:`repro.observability.export`).

The data model mirrors Prometheus':

- a **family** is one named metric of one type with a fixed label schema
  (e.g. ``repro_rank_xfer_bytes_total{rank, direction}``);
- a **child** is one label-value combination of a family, holding the
  actual number(s);
- the **registry** owns the families, enforces name/label validity, and
  caps per-family label cardinality so an instrumentation bug cannot eat
  the host's memory.

Instruments are get-or-create: registering the same (name, type, labels)
twice returns the existing family, so independently constructed
components can share one machine-wide registry without coordination.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError


@dataclass(frozen=True, slots=True)
class Exemplar:
    """One trace reference attached to a histogram bucket.

    The OpenMetrics exemplar model: which trace produced an observation
    that landed in this bucket, the observed value, and the simulated
    timestamp.  Exporters render it as ``# {trace_id="..."} value ts``
    after the bucket sample, and the dashboard uses it to jump from a
    latency bucket straight to the trace that explains it.
    """

    trace_id: str
    value: float
    ts: float

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds).  Simulated latencies in this
#: reproduction span sub-microsecond page-management steps to multi-second
#: application phases, so the ladder is log-spaced across 1 us .. 10 s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: Per-family cap on distinct label-value combinations.
MAX_SERIES_PER_FAMILY = 4096


def _validate_metric_name(name: str) -> None:
    if not _METRIC_NAME_RE.match(name or ""):
        raise ObservabilityError(f"invalid metric name {name!r}")


def _validate_label_names(names: Sequence[str]) -> None:
    for label in names:
        if not _LABEL_NAME_RE.match(label or "") or label.startswith("__"):
            raise ObservabilityError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise ObservabilityError(f"duplicate label names in {list(names)}")


class _Child:
    """One label-value combination of a family."""

    __slots__ = ("label_values",)

    def __init__(self, label_values: Tuple[str, ...]) -> None:
        self.label_values = label_values


class CounterChild(_Child):
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self, label_values: Tuple[str, ...]) -> None:
        super().__init__(label_values)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counters cannot decrease (inc by {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class GaugeChild(_Child):
    """A value that can go up and down (queue depth, pool occupancy)."""

    __slots__ = ("_value",)

    def __init__(self, label_values: Tuple[str, ...]) -> None:
        super().__init__(label_values)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class HistogramChild(_Child):
    """A distribution of observations over fixed buckets.

    Bucket counts are stored per-bucket and cumulated at export time, the
    way Prometheus expects ``le`` series.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "exemplars")

    def __init__(self, label_values: Tuple[str, ...],
                 buckets: Tuple[float, ...]) -> None:
        super().__init__(label_values)
        self.buckets = buckets
        self.bucket_counts = [0] * (len(buckets) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0
        #: bucket index -> most recent :class:`Exemplar` that landed there
        #: (the +Inf bucket is index ``len(buckets)``).  Lazily allocated:
        #: un-exemplared histograms pay one ``None`` check per observe.
        self.exemplars: Optional[Dict[int, Exemplar]] = None

    def observe(self, value: float,
                exemplar: Optional[Tuple[str, float]] = None) -> None:
        """Record ``value``; ``exemplar`` is an optional ``(trace_id,
        sim_ts)`` pair linking the bucket to the trace that produced it."""
        if math.isnan(value):
            raise ObservabilityError("cannot observe NaN")
        self.count += 1
        self.sum += value
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.bucket_counts[index] += 1
        if exemplar is not None:
            if self.exemplars is None:
                self.exemplars = {}
            trace_id, ts = exemplar
            self.exemplars[index] = Exemplar(trace_id=trace_id,
                                             value=value, ts=ts)

    def exemplar_for(self, bucket_index: int) -> Optional[Exemplar]:
        """The latest exemplar of one bucket (``len(buckets)`` = +Inf)."""
        if self.exemplars is None:
            return None
        return self.exemplars.get(bucket_index)

    def worst_exemplar(self) -> Optional[Exemplar]:
        """The exemplar from the highest populated bucket — the trace
        behind this histogram's worst recent latency."""
        if not self.exemplars:
            return None
        return self.exemplars[max(self.exemplars)]

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out: List[Tuple[float, int]] = []
        acc = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            acc += n
            out.append((bound, acc))
        out.append((math.inf, acc + self.bucket_counts[-1]))
        return out


_CHILD_TYPES = {
    "counter": CounterChild,
    "gauge": GaugeChild,
    "histogram": HistogramChild,
}


class MetricFamily:
    """One named metric: a type, a help string, a label schema, children."""

    def __init__(self, name: str, kind: str, help: str,
                 label_names: Sequence[str] = (),
                 buckets: Optional[Sequence[float]] = None,
                 max_series: int = MAX_SERIES_PER_FAMILY) -> None:
        _validate_metric_name(name)
        _validate_label_names(label_names)
        if kind not in _CHILD_TYPES:
            raise ObservabilityError(f"unknown metric type {kind!r}")
        if buckets is not None and kind != "histogram":
            raise ObservabilityError(
                f"{name}: buckets only apply to histograms")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.max_series = max_series
        if kind == "histogram":
            bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
            if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
                raise ObservabilityError(
                    f"{name}: histogram buckets must be strictly increasing")
            self.buckets: Optional[Tuple[float, ...]] = bounds
        else:
            self.buckets = None
        self._children: Dict[Tuple[str, ...], _Child] = {}

    # -- child access ------------------------------------------------------

    def labels(self, **label_values: object) -> _Child:
        """The child for one label-value combination (created on demand)."""
        if set(label_values) != set(self.label_names):
            raise ObservabilityError(
                f"{self.name}: got labels {sorted(label_values)}, "
                f"schema is {sorted(self.label_names)}"
            )
        key = tuple(str(label_values[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self.max_series:
                raise ObservabilityError(
                    f"{self.name}: label cardinality exceeds "
                    f"{self.max_series} series (runaway label values?)"
                )
            if self.kind == "histogram":
                child = HistogramChild(key, self.buckets or DEFAULT_BUCKETS)
            else:
                child = _CHILD_TYPES[self.kind](key)
            self._children[key] = child
        return child

    def _unlabeled(self) -> _Child:
        if self.label_names:
            raise ObservabilityError(
                f"{self.name} requires labels {list(self.label_names)}")
        return self.labels()

    # Convenience for label-less families.
    def inc(self, amount: float = 1.0) -> None:
        self._unlabeled().inc(amount)  # type: ignore[attr-defined]

    def set(self, value: float) -> None:
        self._unlabeled().set(value)  # type: ignore[attr-defined]

    def observe(self, value: float,
                exemplar: Optional[Tuple[str, float]] = None) -> None:
        self._unlabeled().observe(value,  # type: ignore[attr-defined]
                                  exemplar=exemplar)

    # -- introspection ------------------------------------------------------

    @property
    def children(self) -> List[_Child]:
        return list(self._children.values())

    def samples(self) -> List[Tuple[Dict[str, str], _Child]]:
        """``(labels_dict, child)`` pairs in insertion order."""
        return [
            (dict(zip(self.label_names, key)), child)
            for key, child in self._children.items()
        ]

    def value(self, **label_values: object) -> float:
        """Current value for one label set; 0 if never touched.

        For histograms this returns the observation *count* (the natural
        "how many" question tests ask).
        """
        key = tuple(str(label_values.get(n, "")) for n in self.label_names)
        if set(label_values) != set(self.label_names):
            raise ObservabilityError(
                f"{self.name}: got labels {sorted(label_values)}, "
                f"schema is {sorted(self.label_names)}"
            )
        child = self._children.get(key)
        if child is None:
            return 0.0
        if isinstance(child, HistogramChild):
            return float(child.count)
        return child.value  # type: ignore[attr-defined]

    def total(self) -> float:
        """Sum over all children (histograms contribute their count)."""
        out = 0.0
        for child in self._children.values():
            if isinstance(child, HistogramChild):
                out += child.count
            else:
                out += child.value  # type: ignore[attr-defined]
        return out


class MetricsRegistry:
    """The machine-wide instrument store.

    One registry exists per simulated host (``machine.metrics``); every
    layer — ranks, manager, vUPMEM frontends/backends, sessions, the
    tracer bridge — registers its families here, and the exporters render
    a consistent snapshot of all of them.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # -- registration -------------------------------------------------------

    def _register(self, name: str, kind: str, help: str,
                  labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if (existing.kind != kind
                    or existing.label_names != tuple(labels)):
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}{list(existing.label_names)}, "
                    f"cannot re-register as {kind}{list(labels)}"
                )
            return existing
        family = MetricFamily(name, kind, help, labels, buckets)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        return self._register(name, "histogram", help, labels, buckets)

    # -- lookup ------------------------------------------------------------

    def get(self, name: str) -> MetricFamily:
        try:
            return self._families[name]
        except KeyError:
            raise ObservabilityError(
                f"metric {name!r} is not registered") from None

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def names(self) -> List[str]:
        return sorted(self._families)

    def collect(self) -> Iterable[MetricFamily]:
        """Families in name order (the exporters' iteration contract)."""
        for name in sorted(self._families):
            yield self._families[name]

    def value(self, name: str, **label_values: object) -> float:
        """Shortcut: current value of one series, 0 if absent."""
        if name not in self._families:
            return 0.0
        return self._families[name].value(**label_values)

    def reset(self) -> None:
        """Drop all recorded values but keep the registered schemas."""
        for family in self._families.values():
            family._children.clear()
