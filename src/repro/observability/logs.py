"""Trace-correlated structured logging.

Replaces ad-hoc prints with JSONL records that carry the simulated
timestamp plus the trace_id/span_id of whatever span was open when the
record was emitted — so a log line from deep inside the backend can be
joined against the exact request timeline that produced it (the same
correlation OpenTelemetry mandates between logs and traces).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional


class TraceLogger:
    """Bounded in-memory structured log bound to a span recorder.

    Records are plain dicts; :meth:`to_jsonl` renders one JSON object
    per line.  Memory is bounded by ``max_records`` — overflow drops the
    *newest* record and counts it, mirroring the tracer backstop.
    """

    def __init__(self, recorder, max_records: int = 10_000) -> None:
        self._recorder = recorder
        self.max_records = max_records
        self.records: List[Dict[str, object]] = []
        self.dropped = 0

    def emit(self, event: str, layer: str,
             **fields: object) -> Optional[Dict[str, object]]:
        """Emit one structured record, stamped with the simulated time
        and the identity of the innermost open span (if any)."""
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return None
        record: Dict[str, object] = {
            "ts": self._recorder.clock.now,
            "event": event,
            "layer": layer,
        }
        current = self._recorder.current
        if current is not None:
            record["trace_id"] = current.trace_id
            record["span_id"] = current.span_id
        record.update(fields)
        self.records.append(record)
        return record

    def for_trace(self, trace_id: str) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("trace_id") == trace_id]

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(r, sort_keys=True) for r in self.records)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl() + "\n")

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0
