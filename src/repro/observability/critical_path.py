"""Critical-path attribution over finished traces.

Reproduces the paper's Fig. 12/13-style breakdowns from spans alone:
:func:`layer_self_times` attributes every instant of the root span's
window to exactly one stack layer (the deepest span covering it), so the
per-layer self-times *partition* the session total — they sum back to it
to float precision, which the tests cross-check against the
:class:`~repro.sdk.profile.Profiler`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.observability.spans import Span, Trace


def _attribution_intervals(trace: Trace) -> List[Tuple[float, float, Span]]:
    """Split ``[root.start, root.end]`` into intervals each owned by the
    deepest span covering it.

    A sweep over sorted span boundaries keeps an active set; at every
    elementary interval the owner is the active span of maximal
    ``(depth, buffer order)`` — later-buffered spans of equal depth win,
    so overlapping parallel siblings attribute to the one drawn on top.
    Exact partitioning (no gaps, no double counting) is what makes the
    1e-9 sum criterion hold even with overlapping or overflowing spans.
    """
    root = trace.root
    if root is None or root.end is None:
        return []
    indexed = [(i, s) for i, s in enumerate(trace.spans) if s.end is not None]
    points = sorted({root.start, root.end}
                    | {s.start for _, s in indexed}
                    | {s.end for _, s in indexed})
    points = [p for p in points if root.start <= p <= root.end]
    starts_at: Dict[float, List[Tuple[int, Span]]] = {}
    ends_at: Dict[float, List[Tuple[int, Span]]] = {}
    for entry in indexed:
        starts_at.setdefault(entry[1].start, []).append(entry)
        ends_at.setdefault(entry[1].end, []).append(entry)
    active: Dict[int, Span] = {}
    intervals: List[Tuple[float, float, Span]] = []
    for i, point in enumerate(points):
        for order, span in ends_at.get(point, ()):
            active.pop(order, None)
        for order, span in starts_at.get(point, ()):
            active[order] = span
        if i + 1 >= len(points):
            break
        nxt = points[i + 1]
        if nxt <= point or not active:
            continue
        owner_order = max(active, key=lambda o: (active[o].depth, o))
        intervals.append((point, nxt, active[owner_order]))
    return intervals


def layer_self_times(trace: Trace) -> Dict[str, float]:
    """Per-layer self-time of one trace: simulated seconds each layer
    spent with no deeper layer active.  Values sum to the root span's
    duration exactly (up to float addition error)."""
    totals: Dict[str, float] = {}
    for start, end, owner in _attribution_intervals(trace):
        totals[owner.layer] = totals.get(owner.layer, 0.0) + (end - start)
    return totals


def critical_path(trace: Trace) -> List[Span]:
    """Root-to-leaf chain following the longest-duration child at each
    level — the request spine a latency fix must shorten."""
    root = trace.root
    if root is None:
        return []
    path = [root]
    current: Optional[Span] = root
    while current is not None:
        children = [s for s in trace.children_of(current)
                    if s.duration is not None]
        if not children:
            break
        current = max(children, key=lambda s: (s.duration, -s.span_id))
        path.append(current)
    return path


def slowest_spans(trace: Trace, name: Optional[str] = None,
                  layer: Optional[str] = None, top: int = 5) -> List[Span]:
    """The ``top`` longest spans, optionally filtered by name/layer."""
    spans = [s for s in trace.spans if s.duration is not None
             and (name is None or s.name == name)
             and (layer is None or s.layer == layer)]
    spans.sort(key=lambda s: (-s.duration, s.span_id))
    return spans[:top]
