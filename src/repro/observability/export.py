"""Snapshot exporters: Prometheus text exposition format and JSON.

``render_prometheus`` emits the text format a Prometheus server scrapes
(`HELP`/`TYPE` headers, one sample per line, cumulative ``le`` buckets
for histograms); ``render_json`` emits the same snapshot as a plain data
structure for programmatic consumption (dashboards, the test suite,
``repro metrics --format json``).
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional

from repro.observability.metrics import (
    Exemplar,
    HistogramChild,
    MetricFamily,
    MetricsRegistry,
)


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\")
                 .replace("\n", "\\n")
                 .replace('"', '\\"'))


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value the way Prometheus clients do."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def format_exemplar(exemplar: Exemplar) -> str:
    """OpenMetrics exemplar suffix: ``# {trace_id="..."} value ts``."""
    return (f' # {{trace_id="{_escape_label_value(exemplar.trace_id)}"}} '
            f"{format_value(exemplar.value)} {format_value(exemplar.ts)}")


def _render_family(family: MetricFamily) -> List[str]:
    lines = [
        f"# HELP {family.name} {_escape_help(family.help)}",
        f"# TYPE {family.name} {family.kind}",
    ]
    for labels, child in family.samples():
        if isinstance(child, HistogramChild):
            for index, (bound, cumulative) in enumerate(
                    child.cumulative_buckets()):
                le = "+Inf" if math.isinf(bound) else format_value(bound)
                extra = 'le="' + le + '"'
                exemplar = child.exemplar_for(index)
                suffix = (format_exemplar(exemplar)
                          if exemplar is not None else "")
                lines.append(
                    f"{family.name}_bucket{_label_str(labels, extra=extra)}"
                    f" {cumulative}{suffix}"
                )
            lines.append(f"{family.name}_sum{_label_str(labels)} "
                         f"{format_value(child.sum)}")
            lines.append(f"{family.name}_count{_label_str(labels)} "
                         f"{child.count}")
        else:
            lines.append(f"{family.name}{_label_str(labels)} "
                         f"{format_value(child.value)}")
    return lines


def render_prometheus(registry: MetricsRegistry) -> str:
    """The full registry in Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.collect():
        lines.extend(_render_family(family))
    return "\n".join(lines) + "\n"


def snapshot_dict(registry: MetricsRegistry,
                  now: Optional[float] = None) -> dict:
    """The registry as plain data (the JSON exporter's payload).

    ``now`` stamps the snapshot with the simulated time it was taken at
    (``sim_time``), which is what lets two snapshots be diffed into
    rates (``repro metrics --diff``, :mod:`repro.observability.snapshots`).
    """
    metrics = []
    for family in registry.collect():
        samples = []
        for labels, child in family.samples():
            if isinstance(child, HistogramChild):
                buckets = []
                for index, (bound, cumulative) in enumerate(
                        child.cumulative_buckets()):
                    entry = {"le": ("+Inf" if math.isinf(bound) else bound),
                             "count": cumulative}
                    exemplar = child.exemplar_for(index)
                    if exemplar is not None:
                        entry["exemplar"] = {
                            "trace_id": exemplar.trace_id,
                            "value": exemplar.value,
                            "ts": exemplar.ts,
                        }
                    buckets.append(entry)
                samples.append({
                    "labels": labels,
                    "count": child.count,
                    "sum": child.sum,
                    "buckets": buckets,
                })
            else:
                samples.append({"labels": labels, "value": child.value})
        metrics.append({
            "name": family.name,
            "type": family.kind,
            "help": family.help,
            "label_names": list(family.label_names),
            "samples": samples,
        })
    out: dict = {"metrics": metrics}
    if now is not None:
        out["sim_time"] = now
    return out


def render_json(registry: MetricsRegistry, indent: int = 2,
                now: Optional[float] = None) -> str:
    """The full registry as a JSON document."""
    return json.dumps(snapshot_dict(registry, now=now), indent=indent)


def save_snapshot(registry: MetricsRegistry, path: str,
                  fmt: str = "prom") -> None:
    """Write a snapshot to ``path`` in ``prom`` or ``json`` format."""
    if fmt == "prom":
        payload = render_prometheus(registry)
    elif fmt == "json":
        payload = render_json(registry)
    else:
        raise ValueError(f"unknown metrics format {fmt!r} (prom|json)")
    with open(path, "w") as handle:
        handle.write(payload)
