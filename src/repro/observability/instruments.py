"""Per-component instrument bindings.

Each class here binds one component's identity labels (rank index, device
id, ...) once at construction and exposes intention-revealing methods the
component calls on its hot path (``obs.prefetch_hit(...)`` instead of
five lines of registry plumbing).  All metric names go through the
catalog, so a binding cannot emit an undocumented metric.
"""

from __future__ import annotations

from typing import Dict

from repro.observability.catalog import instrument
from repro.observability.metrics import MetricsRegistry


def _vm_of(device_id: str) -> str:
    """The VM identity embedded in a device id (``vm-0.vupmem1`` -> ``vm-0``)."""
    return device_id.split(".", 1)[0]


def _exemplar_of(spans):
    """``(trace_id, sim_ts)`` from a bound recorder, or ``None``.

    Centralizes the double gate every latency histogram shares: no
    recorder bound (bare unit tests) or exemplar capture off (default
    runs, which must export byte-identical snapshots) both yield
    ``None``, which :meth:`HistogramChild.observe` treats as absent.
    """
    return spans.exemplar() if spans is not None else None


class RankInstruments:
    """Telemetry of one physical (or emulated) rank."""

    def __init__(self, registry: MetricsRegistry, rank_index: int) -> None:
        self.registry = registry
        rank = str(rank_index)
        self._xfer_ops = instrument(registry, "repro_rank_xfer_ops_total")
        self._xfer_bytes = instrument(registry, "repro_rank_xfer_bytes_total")
        self._xfer_seconds = instrument(registry, "repro_rank_xfer_seconds")
        self._launches = instrument(
            registry, "repro_rank_launches_total").labels(rank=rank)
        self._dpu_boots = instrument(
            registry, "repro_rank_dpu_boots_total").labels(rank=rank)
        self._launch_seconds = instrument(
            registry, "repro_rank_launch_seconds").labels(rank=rank)
        self._ci_ops = instrument(registry, "repro_rank_ci_ops_total")
        self._resets = instrument(
            registry, "repro_rank_resets_total").labels(rank=rank)
        self._dpu_faults = instrument(
            registry, "repro_dpu_faults_total").labels(rank=rank)
        self._rank = rank
        # Cache of per-direction bound children, filled on first use so
        # untouched ranks export no zero-valued series; keeps label
        # resolution off the per-transfer hot path.
        self._xfer_bound = {}

    def xfer(self, direction: str, nbytes: int, duration: float) -> None:
        bound = self._xfer_bound.get(direction)
        if bound is None:
            bound = (
                self._xfer_ops.labels(rank=self._rank, direction=direction),
                self._xfer_bytes.labels(rank=self._rank, direction=direction),
                self._xfer_seconds.labels(rank=self._rank,
                                          direction=direction),
            )
            self._xfer_bound[direction] = bound
        ops, nbytes_c, seconds = bound
        ops.inc()
        nbytes_c.inc(nbytes)
        seconds.observe(duration)

    def launch(self, nr_dpus: int, duration: float) -> None:
        self._launches.inc()
        self._dpu_boots.inc(nr_dpus)
        self._launch_seconds.observe(duration)

    def dpu_fault(self) -> None:
        self._dpu_faults.inc()

    def ci(self, command: str, count: int = 1) -> None:
        self._ci_ops.labels(rank=self._rank, command=command).inc(count)

    def reset(self) -> None:
        self._resets.inc()


class FrontendInstruments:
    """Telemetry of one vUPMEM frontend (the guest driver side)."""

    def __init__(self, registry: MetricsRegistry, device_id: str,
                 spans=None) -> None:
        self.registry = registry
        self._spans = spans
        ids = dict(vm=_vm_of(device_id), device=device_id)
        lookups = instrument(registry,
                             "repro_frontend_prefetch_lookups_total")
        self._hits = lookups.labels(result="hit", **ids)
        self._misses = lookups.labels(result="miss", **ids)
        self._refills = instrument(
            registry, "repro_frontend_prefetch_refills_total").labels(**ids)
        self._batched = instrument(
            registry, "repro_frontend_batched_writes_total").labels(**ids)
        self._flushes = instrument(registry,
                                   "repro_frontend_batch_flushes_total")
        self._requests = instrument(registry, "repro_frontend_requests_total")
        self._request_seconds = instrument(registry,
                                           "repro_frontend_request_seconds")
        self._queue_depth = instrument(registry, "repro_virtio_queue_depth")
        self._kicks = instrument(registry, "repro_virtio_kicks_total")
        self._cache_hits = instrument(
            registry, "repro_xfer_cache_hits_total").labels(**ids)
        self._cache_misses = instrument(
            registry, "repro_xfer_cache_misses_total").labels(**ids)
        self._cache_suppressed = instrument(
            registry, "repro_xfer_cache_suppressed_bytes_total").labels(**ids)
        self._cache_invalidations = instrument(
            registry, "repro_xfer_cache_invalidations_total")
        self._plan_hits = instrument(
            registry, "repro_plan_cache_hits_total").labels(**ids)
        self._plan_misses = instrument(
            registry, "repro_plan_cache_misses_total").labels(**ids)
        self._plan_evictions = instrument(
            registry, "repro_plan_cache_evictions_total").labels(**ids)
        self._plan_invalidations = instrument(
            registry, "repro_plan_cache_invalidations_total")
        self._ids = ids

    def prefetch_hit(self, count: int = 1) -> None:
        self._hits.inc(count)

    def prefetch_miss(self, count: int = 1) -> None:
        self._misses.inc(count)

    def prefetch_refill(self, count: int = 1) -> None:
        self._refills.inc(count)

    def batched_writes(self, count: int) -> None:
        self._batched.inc(count)

    def batch_flush(self, reason: str) -> None:
        self._flushes.labels(reason=reason, **self._ids).inc()

    def request(self, kind: str, duration: float) -> None:
        self._requests.labels(kind=kind, **self._ids).inc()
        self._request_seconds.labels(kind=kind, **self._ids).observe(
            duration, exemplar=_exemplar_of(self._spans))

    def request_count(self, kind: str, count: int) -> None:
        """Requests accounted arithmetically (no modeled round trip)."""
        self._requests.labels(kind=kind, **self._ids).inc(count)

    def queue_depth(self, queue: str, depth: int) -> None:
        self._queue_depth.labels(queue=queue, **self._ids).set(depth)

    def kick(self, queue: str) -> None:
        self._kicks.labels(queue=queue, **self._ids).inc()

    def cache_hit(self, count: int = 1) -> None:
        if count:
            self._cache_hits.inc(count)

    def cache_miss(self, count: int = 1) -> None:
        if count:
            self._cache_misses.inc(count)

    def cache_suppressed(self, nbytes: int) -> None:
        if nbytes:
            self._cache_suppressed.inc(nbytes)

    def cache_invalidation(self, reason: str, count: int = 1) -> None:
        if count:
            self._cache_invalidations.labels(reason=reason,
                                             **self._ids).inc(count)

    def plan_hit(self, count: int = 1) -> None:
        if count:
            self._plan_hits.inc(count)

    def plan_miss(self, count: int = 1) -> None:
        if count:
            self._plan_misses.inc(count)

    def plan_eviction(self, count: int = 1) -> None:
        if count:
            self._plan_evictions.inc(count)

    def plan_invalidation(self, reason: str, count: int = 1) -> None:
        if count:
            self._plan_invalidations.labels(reason=reason,
                                            **self._ids).inc(count)


class BackendInstruments:
    """Telemetry of one vUPMEM backend (the VMM device model side)."""

    def __init__(self, registry: MetricsRegistry, device_id: str,
                 spans=None) -> None:
        self.registry = registry
        self._spans = spans
        ids = dict(vm=_vm_of(device_id), device=device_id)
        self._requests = instrument(registry, "repro_backend_requests_total")
        self._request_seconds = instrument(registry,
                                           "repro_backend_request_seconds")
        self._translation = instrument(
            registry, "repro_backend_translation_seconds").labels(**ids)
        self._pages = instrument(
            registry, "repro_backend_translated_pages_total").labels(**ids)
        self._interleave = instrument(
            registry, "repro_backend_interleave_seconds").labels(**ids)
        self._replays = instrument(
            registry, "repro_backend_batch_replay_records_total").labels(**ids)
        self._xlb_hits = instrument(
            registry, "repro_xlb_hits_total").labels(**ids)
        self._xlb_misses = instrument(
            registry, "repro_xlb_misses_total").labels(**ids)
        self._bufpool_reuse = instrument(
            registry, "repro_bufpool_reuse_total").labels(**ids)
        self._ids = ids

    def request(self, kind: str, rank: str, duration: float) -> None:
        self._requests.labels(kind=kind, rank=rank, **self._ids).inc()
        self._request_seconds.labels(kind=kind, **self._ids).observe(
            duration, exemplar=_exemplar_of(self._spans))

    def translation(self, pages: int, duration: float) -> None:
        self._pages.inc(pages)
        self._translation.observe(duration)

    def interleave(self, duration: float) -> None:
        self._interleave.observe(duration)

    def batch_replay(self, records: int) -> None:
        self._replays.inc(records)

    def xlb(self, hits: int, misses: int) -> None:
        """Translation-cache outcomes for one request's page runs."""
        if hits:
            self._xlb_hits.inc(hits)
        if misses:
            self._xlb_misses.inc(misses)

    def bufpool_reuse(self, count: int) -> None:
        """Pool-served buffer acquisitions during one request."""
        if count:
            self._bufpool_reuse.inc(count)


class ManagerInstruments:
    """Telemetry of the host-wide rank manager.

    Allocation outcomes and waits carry the active NAAV policy
    (``round_robin``/``first_fit``/``coldest``) so single-host manager
    decisions read comparably to the fleet scheduler's per-policy series.
    """

    def __init__(self, registry: MetricsRegistry,
                 policy: str = "round_robin") -> None:
        self.registry = registry
        self._transitions = instrument(
            registry, "repro_manager_state_transitions_total")
        self._allocations = instrument(registry,
                                       "repro_manager_allocations_total")
        self._wait = instrument(
            registry, "repro_manager_alloc_wait_seconds"
        ).labels(policy=policy)
        self._resets = instrument(registry, "repro_manager_resets_total")
        self._ranks = instrument(registry, "repro_manager_ranks")
        self._exhausted = instrument(
            registry, "repro_manager_allocation_retries_exhausted_total"
        ).labels(policy=policy)
        self._policy = policy

    def transition(self, from_state: str, to_state: str) -> None:
        self._transitions.labels(from_state=from_state,
                                 to_state=to_state).inc()

    def allocation(self, outcome: str, wait_seconds: float) -> None:
        self._allocations.labels(policy=self._policy, outcome=outcome).inc()
        self._wait.observe(wait_seconds)

    def reset_scheduled(self) -> None:
        self._resets.inc()

    def retries_exhausted(self) -> None:
        self._exhausted.inc()

    def set_rank_states(self, counts: dict) -> None:
        """``counts`` maps state name -> number of ranks in that state."""
        for state, count in counts.items():
            self._ranks.labels(state=state).set(count)


class VmInstruments:
    """Telemetry of the Firecracker launcher."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._boots = instrument(registry, "repro_vm_boots_total")
        self._boot_seconds = instrument(registry, "repro_vm_boot_seconds")
        self._devices = instrument(registry, "repro_vm_vupmem_devices")

    def boot(self, vm_id: str, nr_devices: int, duration: float) -> None:
        self._boots.inc()
        self._boot_seconds.observe(duration)
        self._devices.labels(vm=vm_id).set(nr_devices)


class SessionInstruments:
    """Telemetry of execution sessions (one application run each)."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._runs = instrument(registry, "repro_session_runs_total")
        self._seconds = instrument(registry, "repro_session_run_seconds")

    def run(self, app: str, mode: str, verified: bool,
            duration: float) -> None:
        self._runs.labels(app=app, mode=mode,
                          verified=str(bool(verified)).lower()).inc()
        self._seconds.labels(app=app, mode=mode).observe(duration)


class ClusterInstruments:
    """Telemetry of the fleet control plane (``repro.cluster``).

    Lives in the *cluster* registry (not any single host's machine
    registry): scheduling, admission and consolidation decisions span
    hosts, so their series are labeled by host/tenant identity rather
    than VM/device ids.
    """

    def __init__(self, registry: MetricsRegistry, policy: str) -> None:
        self.registry = registry
        self._requests = instrument(registry, "repro_cluster_requests_total")
        self._queue_depth = instrument(registry, "repro_cluster_queue_depth")
        self._queue_wait = instrument(
            registry, "repro_cluster_queue_wait_seconds"
        ).labels(policy=policy)
        self._placements = instrument(registry,
                                      "repro_cluster_placements_total")
        self._completed = instrument(
            registry, "repro_cluster_sessions_completed_total")
        self._ranks_allocated = instrument(registry,
                                           "repro_cluster_ranks_allocated")
        self._active_vms = instrument(registry, "repro_cluster_active_vms")
        self._migrations = instrument(registry,
                                      "repro_cluster_migrations_total")
        self._migrated_bytes = instrument(
            registry, "repro_cluster_migrated_bytes_total")
        self._consolidations = instrument(
            registry, "repro_cluster_consolidation_runs_total")
        self._drained = instrument(registry,
                                   "repro_cluster_hosts_drained_total")
        self._policy = policy

    def request(self, outcome: str) -> None:
        self._requests.labels(policy=self._policy, outcome=outcome).inc()

    def queue_depth(self, depth: int) -> None:
        self._queue_depth.set(depth)

    def placement(self, host: str, wait_seconds: float) -> None:
        self._placements.labels(policy=self._policy, host=host).inc()
        self._queue_wait.observe(wait_seconds)

    def session_completed(self, host: str) -> None:
        self._completed.labels(host=host).inc()

    def host_load(self, host: str, ranks_allocated: int,
                  active_vms: int) -> None:
        self._ranks_allocated.labels(host=host).set(ranks_allocated)
        self._active_vms.labels(host=host).set(active_vms)

    def migration(self, from_host: str, to_host: str, nr_bytes: int) -> None:
        self._migrations.labels(from_host=from_host, to_host=to_host).inc()
        self._migrated_bytes.inc(nr_bytes)

    def consolidation_run(self) -> None:
        self._consolidations.inc()

    def host_drained(self) -> None:
        self._drained.inc()


class QosInstruments:
    """Telemetry of one QoS flow (``repro.qos``; one binding per VM)."""

    def __init__(self, registry: MetricsRegistry, flow_id: str,
                 spans=None) -> None:
        self.registry = registry
        self._spans = spans
        ids = dict(vm=flow_id)
        self._arbitrations = instrument(registry,
                                        "repro_qos_arbitrations_total")
        self._arbitration_wait = instrument(
            registry, "repro_qos_arbitration_wait_seconds")
        self._throttled = instrument(registry, "repro_qos_throttled_total")
        self._throttle_wait = instrument(
            registry, "repro_qos_throttle_wait_seconds")
        self._weight = instrument(
            registry, "repro_qos_flow_weight").labels(**ids)
        self._ids = ids

    def arbitration(self, mode: str, wait_seconds: float,
                    cause: str) -> None:
        self._arbitrations.labels(mode=mode, **self._ids).inc()
        self._arbitration_wait.labels(cause=cause, **self._ids).observe(
            wait_seconds, exemplar=_exemplar_of(self._spans))

    def throttled(self, resource: str, wait_seconds: float) -> None:
        self._throttled.labels(resource=resource, **self._ids).inc()
        self._throttle_wait.labels(resource=resource,
                                   **self._ids).observe(wait_seconds)

    def weight(self, value: float) -> None:
        self._weight.set(value)


class SloInstruments:
    """Telemetry of the SLO tracker/enforcer (``repro.qos.slo``)."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._burn = instrument(registry, "repro_qos_slo_burn_rate")
        self._violations = instrument(registry,
                                      "repro_qos_slo_violations_total")
        self._actuations = instrument(registry,
                                      "repro_qos_slo_actuations_total")

    def burn(self, tenant: str, objective: str, value: float) -> None:
        self._burn.labels(tenant=tenant, objective=objective).set(value)

    def violation(self, tenant: str, objective: str) -> None:
        self._violations.labels(tenant=tenant, objective=objective).inc()

    def actuation(self, tenant: str, action: str) -> None:
        self._actuations.labels(tenant=tenant, action=action).inc()


class PagingInstruments:
    """Telemetry of the rank pager (``repro.paging``; one per host).

    Swap directions are ``out`` (frame -> store) and ``in`` (store ->
    frame); fault kinds are ``first_touch`` (fresh vrank binding a
    frame), ``demand`` (an operation hit a swapped-out rank) and
    ``predictive`` (swap-in started while the request queued).
    """

    def __init__(self, registry: MetricsRegistry, policy: str,
                 spans=None) -> None:
        self.registry = registry
        self._spans = spans
        swaps = instrument(registry, "repro_paging_swaps_total")
        swap_bytes = instrument(registry, "repro_paging_swap_bytes_total")
        swap_seconds = instrument(registry, "repro_paging_swap_seconds")
        self._swap_bound = {
            direction: (swaps.labels(direction=direction),
                        swap_bytes.labels(direction=direction),
                        swap_seconds.labels(direction=direction))
            for direction in ("out", "in")
        }
        self._faults = instrument(registry, "repro_paging_faults_total")
        self._evictions = instrument(
            registry, "repro_paging_evictions_total").labels(policy=policy)
        self._ranks = instrument(registry, "repro_paging_ranks")
        self._store_bytes = instrument(registry, "repro_paging_store_bytes")
        self._dedup_hits = instrument(registry,
                                      "repro_paging_dedup_hits_total")
        self._overlap = instrument(
            registry, "repro_paging_prefault_overlap_seconds_total")

    def swap(self, direction: str, nbytes: int, duration: float) -> None:
        swaps, swap_bytes, swap_seconds = self._swap_bound[direction]
        swaps.inc()
        swap_bytes.inc(nbytes)
        swap_seconds.observe(duration, exemplar=_exemplar_of(self._spans))

    def fault(self, kind: str) -> None:
        self._faults.labels(kind=kind).inc()

    def eviction(self) -> None:
        self._evictions.inc()

    def residency(self, resident: int, swapped: int) -> None:
        self._ranks.labels(state="resident").set(resident)
        self._ranks.labels(state="swapped").set(swapped)

    def store_footprint(self, raw: int, stored: int) -> None:
        self._store_bytes.labels(kind="raw").set(raw)
        self._store_bytes.labels(kind="stored").set(stored)

    def dedup_hit(self, count: int = 1) -> None:
        if count:
            self._dedup_hits.inc(count)

    def prefault_overlap(self, seconds: float) -> None:
        if seconds > 0:
            self._overlap.inc(seconds)


class FaultInstruments:
    """Telemetry of the fault-injection and recovery subsystem.

    One binding may live in a machine registry (single-host chaos) or the
    cluster registry (host-crash scenarios); injectors, the frontend
    retry path and the recovery helpers all share the ``repro_fault_*``
    families.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._injected = instrument(registry, "repro_fault_injected_total")
        self._detected = instrument(registry, "repro_fault_detected_total")
        self._recovered = instrument(registry, "repro_fault_recovered_total")
        self._recovery_seconds = instrument(
            registry, "repro_fault_recovery_seconds")
        self._sessions_lost = instrument(
            registry, "repro_fault_sessions_lost_total")
        self._retries = instrument(registry, "repro_fault_retries_total")

    def injected(self, kind: str) -> None:
        self._injected.labels(kind=kind).inc()

    def detected(self, kind: str, layer: str) -> None:
        self._detected.labels(kind=kind, layer=layer).inc()

    def recovered(self, kind: str, action: str) -> None:
        self._recovered.labels(kind=kind, action=action).inc()

    def recovery_time(self, kind: str, seconds: float) -> None:
        self._recovery_seconds.labels(kind=kind).observe(seconds)

    def session_lost(self) -> None:
        self._sessions_lost.inc()

    def retry(self, layer: str) -> None:
        self._retries.labels(layer=layer).inc()


class TraceInstruments:
    """The tracer->metrics bridge (one run, both artifacts)."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._events = instrument(registry, "repro_trace_events_total")
        self._dropped = instrument(registry,
                                   "repro_trace_dropped_events_total")

    def event(self, category: str) -> None:
        self._events.labels(category=category).inc()

    def dropped(self) -> None:
        self._dropped.inc()


class SpanInstruments:
    """Telemetry of the span recorder itself.

    Counters stay exact regardless of sampling: a trace decided away by
    ``sample_rate`` still counts every span it started, so the metric
    view never under-reports traffic the trace view chose not to keep.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._started = instrument(registry, "repro_span_started_total")
        self._dropped = instrument(registry, "repro_span_dropped_total")
        self._traces = instrument(registry, "repro_span_traces_total")
        self._started_by_layer: Dict[str, object] = {}
        # Registered on first use, not at construction: the retention
        # family only exists when tail sampling is on, so default-run
        # snapshots keep their pre-telemetry family set byte-for-byte.
        self._retention = None

    def started(self, layer: str, count: int = 1) -> None:
        # Bound per layer on first use: this runs once per span started.
        child = self._started_by_layer.get(layer)
        if child is None:
            child = self._started.labels(layer=layer)
            self._started_by_layer[layer] = child
        child.inc(count)

    def dropped(self, reason: str, count: int = 1) -> None:
        self._dropped.labels(reason=reason).inc(count)

    def trace(self, retained: bool) -> None:
        self._traces.labels(retained=str(bool(retained)).lower()).inc()

    def retention(self, tier: str) -> None:
        """One finished trace classified into ``tier`` by the tail sampler."""
        if self._retention is None:
            self._retention = instrument(self.registry,
                                         "repro_span_retention_total")
        self._retention.labels(tier=tier).inc()


class TsdbInstruments:
    """Self-telemetry of the time-series store.

    These live in the *same* registry the store scrapes, so a store that
    drops points reports that fact in its own next scrape — the CI smoke
    job fails the build on any nonzero drop counter.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._scrapes = instrument(registry, "repro_tsdb_scrapes_total")
        self._samples = instrument(registry, "repro_tsdb_samples_total")
        self._dropped = instrument(registry,
                                   "repro_tsdb_dropped_points_total")
        self._series = instrument(registry, "repro_tsdb_series")

    def scrape(self, samples: int) -> None:
        self._scrapes.inc()
        if samples:
            self._samples.inc(samples)

    def dropped(self, name: str, count: int = 1) -> None:
        self._dropped.labels(name=name).inc(count)

    def series_count(self, count: int) -> None:
        self._series.set(count)


class AlertInstruments:
    """Telemetry of the alert-rule engine (``repro.observability.alerts``)."""

    _STATES = ("inactive", "pending", "firing", "resolved")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._state = instrument(registry, "repro_alert_state")
        self._transitions = instrument(registry,
                                       "repro_alert_transitions_total")
        self._evaluations = instrument(registry,
                                       "repro_alert_evaluations_total")

    def state(self, rule: str, state: str) -> None:
        for candidate in self._STATES:
            self._state.labels(rule=rule, state=candidate).set(
                1.0 if candidate == state else 0.0)

    def transition(self, rule: str, to_state: str) -> None:
        self._transitions.labels(rule=rule, to_state=to_state).inc()

    def evaluation(self, rule: str) -> None:
        self._evaluations.labels(rule=rule).inc()
