"""Exception hierarchy for the vPIM reproduction.

Every layer of the stack (hardware, SDK, driver, virtualization, manager)
raises a subclass of :class:`ReproError` so callers can catch at the
granularity they care about.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Hardware layer
# --------------------------------------------------------------------------

class HardwareError(ReproError):
    """Base class for hardware-simulator errors."""


class MemoryAccessError(HardwareError):
    """An access fell outside a memory region or violated alignment rules."""


class DpuFaultError(HardwareError):
    """A DPU kernel faulted during execution (bad access, bad host var...)."""


class RankOfflineError(HardwareError):
    """An operation reached a rank whose health is OFFLINE (injected or
    detected hardware failure); the rank must be repaired or replaced."""


class ControlInterfaceError(HardwareError):
    """An invalid command was written to a rank's control interface."""


# --------------------------------------------------------------------------
# SDK layer
# --------------------------------------------------------------------------

class SdkError(ReproError):
    """Base class for UPMEM-SDK-level errors."""


class AllocationError(SdkError):
    """DPU/rank allocation failed (no free ranks, too many DPUs...)."""


class ProgramLoadError(SdkError):
    """A DPU program could not be loaded (missing kernel, IRAM overflow)."""


class TransferError(SdkError):
    """A host<->DPU transfer was malformed (size, symbol, alignment)."""


class LaunchError(SdkError):
    """dpu_launch failed (no program loaded, DPU already running)."""


# --------------------------------------------------------------------------
# Driver layer
# --------------------------------------------------------------------------

class DriverError(ReproError):
    """Base class for UPMEM-driver-level errors."""


class IoctlError(DriverError):
    """Invalid ioctl request to the safe-mode driver."""


class MmapError(DriverError):
    """Performance-mode mmap failed (rank busy or absent)."""


# --------------------------------------------------------------------------
# Virtualization layer
# --------------------------------------------------------------------------

class VirtError(ReproError):
    """Base class for virtualization-stack errors."""


class VirtqueueError(VirtError):
    """Virtqueue misuse: overflow, bad descriptor chain, wrong queue."""


class SerializationError(VirtError):
    """The transfer matrix could not be (de)serialized."""


class TranslationError(VirtError):
    """A guest physical address could not be translated to a host address."""


class DeviceNotLinkedError(VirtError):
    """A request was sent while the vUPMEM device has no backing rank."""


class ManagerError(VirtError):
    """Rank-manager failure (no ranks available after retries, bad state)."""


class VmConfigError(VirtError):
    """Invalid VM configuration passed to the Firecracker API server."""


class TransientFaultError(VirtError):
    """A retryable transport/backend failure.

    Carries ``penalty_s``: the modeled detection latency (CRC check,
    watchdog timeout) the requester pays before it can retry.  The
    frontend's bounded-retry path catches exactly this class.
    """

    kind = "transient"

    def __init__(self, message: str, penalty_s: float = 0.0) -> None:
        super().__init__(message)
        self.penalty_s = penalty_s


class TransportCorruptionError(TransientFaultError):
    """A virtio-pim message failed its integrity check before dispatch."""

    kind = "transport_corruption"


class BackendHungError(TransientFaultError):
    """A backend worker stopped servicing the queue; detected by watchdog."""

    kind = "backend_hang"


# --------------------------------------------------------------------------
# Cluster control plane
# --------------------------------------------------------------------------

class ClusterError(ReproError):
    """Fleet control-plane failure (bad scenario, unknown policy...)."""


class AdmissionError(ClusterError):
    """A tenant request was rejected by admission control."""


class HostCrashedError(ClusterError):
    """An operation targeted a fleet host that has crashed."""


# --------------------------------------------------------------------------
# Fault injection
# --------------------------------------------------------------------------

class FaultInjectionError(ReproError):
    """Fault-plan misuse: bad event target, unknown kind, bad schedule."""


# --------------------------------------------------------------------------
# Observability layer
# --------------------------------------------------------------------------

class ObservabilityError(ReproError):
    """Metrics misuse: bad name/label, type conflict, cardinality blow-up."""
