#!/usr/bin/env python3
"""Quickstart: write a PIM application, run it natively and under vPIM.

This is the Fig. 2 "count zeros" example of the paper, written against
this library's SDK.  The same application code runs unmodified on the
native transport and inside a Firecracker microVM with a vUPMEM device —
the transparency requirement (R3) vPIM is designed around.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps.base import HostApplication
from repro.config import small_machine
from repro.core import VPim
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range


class CountZerosProgram(DpuProgram):
    """DPU side: count zeros in this DPU's MRAM partition (Fig. 2b)."""

    name = "count_zeros_dpu"
    symbols = {"zero_count": 4, "partition_size": 4}
    nr_tasklets = 16

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
        yield ctx.barrier()
        n = ctx.host_u32("partition_size")
        rng = tasklet_range(ctx, n)
        if len(rng):
            ctx.mem_alloc(2048)
            part = ctx.mram_read_blocks(rng.start * 4,
                                        len(rng) * 4).view(np.int32)
            ctx.charge_loop(len(rng), 3)   # load, compare, count
            ctx.add_host_u32("zero_count", int((part == 0).sum()))


class CountZeros(HostApplication):
    """Host side: allocate, distribute, launch, gather (Fig. 2a)."""

    name = "Count Zeros"
    short_name = "CZ"
    domain = "Example"

    def __init__(self, nr_dpus: int, n_elements: int = 1 << 20,
                 seed: int = 0) -> None:
        super().__init__(nr_dpus, n_elements=n_elements, seed=seed)
        rng = np.random.default_rng(seed)
        self.array = rng.integers(0, 4, n_elements, dtype=np.int32)

    def expected(self) -> int:
        return int((self.array == 0).sum())

    def run(self, transport) -> int:
        profiler = transport.profiler
        counts = self.split_even(self.array.size, self.nr_dpus)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        total = 0
        with DpuSet(transport, self.nr_dpus) as dpus:      # dpu_alloc
            dpus.load(CountZerosProgram())                 # dpu_load
            with profiler.segment("CPU-DPU"):              # dpu_push_xfer
                dpus.push_to("partition_size", 0,
                             [np.array([c], np.uint32) for c in counts])
                dpus.push_to_mram(0, [self.array[bounds[i]:bounds[i + 1]]
                                      for i in range(self.nr_dpus)])
            with profiler.segment("DPU"):                  # dpu_launch
                dpus.launch()
            with profiler.segment("DPU-CPU"):              # dpu_copy_from
                for i in range(self.nr_dpus):
                    total += int(dpus.copy_from(i, "zero_count", 0, 4)
                                 .view(np.uint32)[0])
        return total                                       # dpu_free on exit


def main() -> None:
    app_args = dict(nr_dpus=16, n_elements=1 << 20)

    # Native baseline: the SDK drives the physical ranks directly.
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    native = vpim.native_session().run(CountZeros(**app_args))

    # The same application inside a Firecracker microVM with 2 vUPMEM
    # devices, all vPIM optimizations enabled.
    vpim2 = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    session = vpim2.vm_session(nr_vupmem=2)
    virt = session.run(CountZeros(**app_args))

    print("Count-zeros on 16 DPUs across 2 ranks")
    print(f"  expected zeros : {CountZeros(**app_args).expected()}")
    print(f"  native         : {native.segments_total * 1e3:7.2f} ms  "
          f"(verified: {native.verified})")
    print(f"  vPIM           : {virt.segments_total * 1e3:7.2f} ms  "
          f"(verified: {virt.verified})")
    print(f"  overhead       : {virt.overhead_vs(native):.2f}x")
    print(f"  guest<->VMM transitions: {virt.vmexits}")
    print("\nSegment breakdown (vPIM):")
    for name, value in virt.segments.items():
        print(f"  {name:<10} {value * 1e3:8.3f} ms")


if __name__ == "__main__":
    main()
