#!/usr/bin/env python3
"""Oversubscription and consolidation: the paper's Section 7 future work.

When every physical rank is allocated, the Manager can hand out a
*software-emulated* rank (the UPMEM functional simulator) so the tenant
runs degraded instead of failing; when hardware frees up, the tenant's
rank state is checkpointed and migrated back onto silicon.

Run:  python examples/oversubscription.py
"""

from repro.apps.prim.va import VectorAdd
from repro.config import small_machine
from repro.core import VPim
from repro.sdk.dpu_set import DpuSet
from repro.virt.emulation import EMULATED_RANK_BASE
from repro.virt.migration import consolidate


def main() -> None:
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=8),
                oversubscription=True, emulation_slowdown=20)

    print("One physical rank; two tenants want one each.\n")
    holder = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    tenant = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)

    hold = DpuSet(holder.transport, 8)
    print("Tenant A holds the physical rank.")

    report = tenant.run(VectorAdd(nr_dpus=8, n_elements=1 << 18))
    rank = tenant.vm.devices[0].backend.mapping.rank.index \
        if tenant.vm.devices[0].backend.mapping else "released"
    print(f"Tenant B spilled to an emulated rank and still ran VA: "
          f"verified={report.verified}, "
          f"time={report.segments_total * 1e3:.2f} ms")

    vpim2 = VPim(small_machine(nr_ranks=1, dpus_per_rank=8))
    baseline = vpim2.vm_session(nr_vupmem=1).run(
        VectorAdd(nr_dpus=8, n_elements=1 << 18))
    print(f"The same run on hardware: {baseline.segments_total * 1e3:.2f} ms "
          f"-> oversubscription slowdown "
          f"{report.segments_total / baseline.segments_total:.1f}x\n")

    print("Tenant B keeps a long-lived allocation on the emulated rank...")
    import numpy as np
    spilled = DpuSet(tenant.transport, 8)
    spilled.push_to_mram(0, [np.full(1024, 0x42, np.uint8)] * 8)
    emu_rank = spilled.channels[0].rank_index
    assert emu_rank >= EMULATED_RANK_BASE
    print(f"  linked to emulated rank {emu_rank}")

    print("\nTenant A departs; the physical rank resets and frees...")
    hold.free()
    vpim.machine.clock.advance(1.0)

    migrated = consolidate(vpim.manager, tenant.vm.devices)
    new_rank = tenant.vm.devices[0].backend.mapping.rank.index
    data_ok = all((buf == 0x42).all()
                  for buf in spilled.push_from_mram(0, 1024))
    print(f"Consolidation migrated {migrated} device(s): tenant B now on "
          f"physical rank {new_rank}, data intact: {data_ok}")
    print(f"Emulated ranks still active: {vpim.manager.emulated_pool.active}")
    spilled.free()


if __name__ == "__main__":
    main()
