#!/usr/bin/env python3
"""Sensitivity sweep: where does virtualization overhead come from?

Reproduces the spirit of Fig. 9 with the checksum microbenchmark: the
overhead is driven by the *number* of guest->VMM transitions, not by the
volume of transferred data, so it shrinks as transfers get bigger, and
it does not depend on the vCPU count at all.

Run:  python examples/sensitivity_sweep.py
"""

from repro.analysis.figures import machine_for_dpus
from repro.analysis.report import format_table
from repro.apps.micro.checksum import Checksum, ci_ops_for_size
from repro.core import VPim

SCALE = 64  # nominal paper MB, scaled down for a quick run


def pair(nr_dpus, file_mb, vcpus=16):
    cfg = machine_for_dpus(nr_dpus)
    def app():
        return Checksum(nr_dpus=nr_dpus, file_mb=file_mb, scale=SCALE)
    native = VPim(cfg).native_session().run(app())
    virt = VPim(cfg).vm_session(nr_vupmem=cfg.nr_ranks,
                                vcpus=vcpus).run(app())
    return native, virt


def main() -> None:
    print("Checksum sensitivity (sizes are nominal paper MB, scale 1/%d)\n"
          % SCALE)

    rows = []
    for vcpus in (2, 4, 8, 16):
        native, virt = pair(60, 60, vcpus=vcpus)
        rows.append((vcpus, f"{virt.segments_total:.4f}"))
    print(format_table(["#vCPUs", "vPIM s"], rows,
                       title="(a) vCPU count does not matter"))
    print()

    rows = []
    for nr_dpus in (1, 8, 16, 60):
        native, virt = pair(nr_dpus, 60)
        rows.append((nr_dpus, f"{native.segments_total:.4f}",
                     f"{virt.segments_total:.4f}",
                     f"{virt.overhead_vs(native):.2f}x"))
    print(format_table(["#DPUs", "native s", "vPIM s", "overhead"], rows,
                       title="(b) more DPUs = more data to move"))
    print()

    rows = []
    for mb in (8, 20, 40, 60):
        native, virt = pair(60, mb)
        rows.append((mb, ci_ops_for_size(mb),
                     f"{native.segments_total:.4f}",
                     f"{virt.segments_total:.4f}",
                     f"{virt.overhead_vs(native):.2f}x"))
    print(format_table(
        ["MB/DPU", "CI ops", "native s", "vPIM s", "overhead"], rows,
        title="(c) bigger transfers amortize the fixed per-call cost"))
    print("\nThe paper's Fig. 9c: 2.33x at 8 MB falling to 1.29x at 60 MB.")


if __name__ == "__main__":
    main()
