#!/usr/bin/env python3
"""Multi-tenant PIM cloud: several VMs sharing UPMEM ranks via the Manager.

Demonstrates Section 3.5: two tenants time-share the machine's ranks,
the Manager tracks rank states (NAAV / ALLO / NANA), releases are
detected through sysfs without application cooperation, and a released
rank is wiped before another tenant can touch it — while a tenant
re-acquiring its own rank *before* the reset completes takes the NANA
fast path and skips the wipe.

Run:  python examples/multi_tenant_cloud.py
"""

import numpy as np

from repro.config import small_machine
from repro.core import VPim
from repro.sdk.dpu_set import DpuSet


def show_states(vpim, label):
    states = {idx: state.value for idx, state in vpim.manager.states().items()}
    print(f"  rank states {label}: {states}")


def main() -> None:
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    clock = vpim.machine.clock

    print("Booting two tenant microVMs...")
    tenant_a = vpim.vm_session(nr_vupmem=2, mem_bytes=1 << 30)
    tenant_b = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    show_states(vpim, "after boot")

    print("\n--- NANA fast path: same tenant, immediate re-allocation ---")
    with DpuSet(tenant_a.transport, 8) as dpus:
        dpus.push_to_mram(0, [np.full(4096, 0x5A, np.uint8)] * 8)
        rank_first = dpus.channels[0].rank_index
    # The rank is NANA (reset pending).  Tenant A asks again right away:
    with DpuSet(tenant_a.transport, 8) as dpus:
        rank_again = dpus.channels[0].rank_index
        own_data = dpus.push_from_mram(0, 4096)[0]
        preserved = bool((own_data == 0x5A).all())
    print(f"  re-acquired rank {rank_again} (was {rank_first}); "
          f"own data preserved without a reset: {preserved}")
    assert preserved and rank_again == rank_first
    print(f"  NANA reuses so far: {vpim.manager.stats.nana_reuses}")

    print("\n--- Isolation: another tenant must never see residual data ---")
    secret = np.full(4096, 0xAB, dtype=np.uint8)
    with DpuSet(tenant_a.transport, 16) as dpus:   # A takes BOTH ranks
        dpus.push_to_mram(0, [secret] * 16)
    show_states(vpim, "right after A's release (NANA = resetting)")

    t0 = clock.now
    with DpuSet(tenant_b.transport, 8) as dpus:    # B must wait for a reset
        waited = clock.now - t0
        data = dpus.push_from_mram(0, 4096)
        leaked = any(buf.any() for buf in data)
    print(f"  B waited {waited * 1e3:.0f} ms (reset {vpim.machine.cost.manager_reset * 1e3:.0f} ms"
          f" + allocation {vpim.machine.cost.manager_alloc * 1e3:.0f} ms)")
    print(f"  residual data visible to B: {leaked}  <- must be False")
    assert not leaked

    show_states(vpim, "at the end")
    stats = vpim.manager.stats
    print(f"\nManager statistics: allocations={stats.allocations}, "
          f"NANA reuses={stats.nana_reuses}, resets={stats.resets}, "
          f"waits={stats.waits}")
    print(f"Modeled manager CPU: idle {vpim.manager.idle_cpu_utilization():.0%}, "
          f"while resetting {vpim.manager.reset_cpu_utilization(1):.0%} "
          f"(paper: 40% / 92%)")


if __name__ == "__main__":
    main()
