#!/usr/bin/env python3
"""Optimization ablation: what each vPIM optimization buys on NW.

Needleman-Wunsch is the paper's worst case — thousands of tiny boundary
transfers per run.  This example runs it under every Table 2 preset and
prints the execution time, message counts, and per-segment effects, so
you can see the prefetch cache eating the boundary *reads* and request
batching eating the boundary *writes* (Fig. 14).

Run:  python examples/optimization_ablation.py
"""

from repro.analysis.figures import machine_for_dpus
from repro.analysis.report import format_table
from repro.apps.prim.nw import NeedlemanWunsch
from repro.core import VPim
from repro.virt.opts import PRESETS

NR_DPUS = 16
NW_ARGS = dict(seq_len=512, block_size=64)


def run(preset_name=None):
    vpim = VPim(machine_for_dpus(NR_DPUS))
    if preset_name is None:
        session = vpim.native_session()
    else:
        session = vpim.vm_session(nr_vupmem=1, preset_name=preset_name)
    return session.run(NeedlemanWunsch(nr_dpus=NR_DPUS, **NW_ARGS))


def main() -> None:
    native = run()
    rows = [("native", "-", "-", "-", "-",
             f"{native.segments_total * 1e3:.1f}", "1.00x", 0)]
    for name in ("vPIM-rust", "vPIM-C", "vPIM+P", "vPIM+B", "vPIM+PB", "vPIM"):
        opts = PRESETS[name]
        rep = run(name)
        rows.append((
            name,
            "Y" if opts.c_enhancement else "-",
            "Y" if opts.prefetch_cache else "-",
            "Y" if opts.request_batching else "-",
            "Y" if opts.parallel_handling else "-",
            f"{rep.segments_total * 1e3:.1f}",
            f"{rep.overhead_vs(native):.2f}x",
            rep.profile.messages.requests,
        ))
    print(format_table(
        ["config", "C", "P", "B", "par", "total ms", "overhead", "messages"],
        rows,
        title=f"NW ({NW_ARGS['seq_len']}x{NW_ARGS['seq_len']}, "
              f"{NR_DPUS} DPUs) under every Table 2 configuration"))
    print("\nTakeaways (matching the paper's):")
    print(" 1. disable the prefetch cache when reads are not small+repeated;")
    print(" 2. minimize transfer operations — aggregate data where you can;")
    print(" 3. batching + prefetching recover most of the naive overhead.")


if __name__ == "__main__":
    main()
